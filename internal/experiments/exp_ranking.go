package experiments

import (
	"fmt"
	"lite/internal/core"
	"lite/internal/metrics"
	"lite/internal/sparksim"
	"lite/internal/stats"
)

// RankingScore is an (HR@5, NDCG@5) pair.
type RankingScore struct {
	HR   float64
	NDCG float64
}

// evalRanker scores a ranker over gold cases and averages HR@5/NDCG@5.
func evalRanker(r Ranker, cases []*GoldCase, k int) RankingScore {
	var hr, ndcg float64
	for _, gc := range cases {
		scores := r.Scores(gc)
		pred := metrics.RankByScore(scores)
		gold := metrics.RankByScore(gc.Actual)
		hr += metrics.HRAtK(pred, gold, k)
		ndcg += metrics.NDCGAtK(pred, gold, k)
	}
	n := float64(len(cases))
	return RankingScore{HR: hr / n, NDCG: ndcg / n}
}

// evalScores computes ranking metrics for precomputed candidate scores.
func evalScores(scores, actual []float64, k int) RankingScore {
	pred := metrics.RankByScore(scores)
	gold := metrics.RankByScore(actual)
	return RankingScore{
		HR:   metrics.HRAtK(pred, gold, k),
		NDCG: metrics.NDCGAtK(pred, gold, k),
	}
}

// Table7Result is the ranking ablation (Table VII / RQ2.1, RQ2.2): HR@5 and
// NDCG@5 of every feature/model combination over the validation data of
// clusters A, B, C and the large testing data.
type Table7Result struct {
	Rows    []string // method names, table order
	Columns []string // "A", "B", "C", "Large"
	Scores  map[string]map[string]RankingScore
}

// Table7Rankers instantiates the Table VII method list.
func Table7Rankers(s *Suite) []Ranker {
	cfg := s.Opts.NECS
	return []Ranker{
		NewFlatRanker("LightGBM", ModeW, NewGBMModel(), s.Apps),
		NewFlatRanker("LightGBM", ModeS, NewGBMModel(), s.Apps),
		NewFlatRanker("LightGBM", ModeWC, NewGBMModel(), s.Apps),
		NewFlatRanker("LightGBM", ModeSC, NewGBMModel(), s.Apps),
		NewFlatRanker("LightGBM", ModeSCG, NewGBMModel(), s.Apps),
		NewFlatRanker("MLP", ModeW, NewMLPModel(), s.Apps),
		NewFlatRanker("MLP", ModeS, NewMLPModel(), s.Apps),
		NewFlatRanker("MLP", ModeWC, NewMLPModel(), s.Apps),
		NewFlatRanker("MLP", ModeSC, NewMLPModel(), s.Apps),
		NewFlatRanker("MLP", ModeSCG, NewMLPModel(), s.Apps),
		NewNeuralRanker(VariantGCN, cfg),
		NewNeuralRanker(VariantLSTM, cfg),
		NewNeuralRanker(VariantTransformer, cfg),
		NewNeuralRanker(VariantNECS, cfg),
	}
}

// Table7 trains every ranker once on the shared dataset and evaluates on
// all four test columns.
func Table7(s *Suite) *Table7Result {
	res := &Table7Result{
		Columns: []string{"A", "B", "C", "Large"},
		Scores:  map[string]map[string]RankingScore{},
	}
	cases := map[string][]*GoldCase{
		"A":     s.ValidationCases(sparksim.ClusterA, 401),
		"B":     s.ValidationCases(sparksim.ClusterB, 402),
		"C":     s.ValidationCases(sparksim.ClusterC, 403),
		"Large": s.LargeCases(404),
	}
	for i, r := range Table7Rankers(s) {
		r.Fit(s.Dataset(), s.rng(int64(410+i)))
		res.Rows = append(res.Rows, r.Name())
		res.Scores[r.Name()] = map[string]RankingScore{}
		for _, col := range res.Columns {
			res.Scores[r.Name()][col] = evalRanker(r, cases[col], 5)
		}
	}
	return res
}

// Format renders Table VII.
func (r *Table7Result) Format() string {
	header := []string{"method"}
	for _, c := range r.Columns {
		header = append(header, c+" HR@5", c+" NDCG@5")
	}
	t := NewTable("Table VII: ranking performance (HR@5 / NDCG@5) per cluster and on large jobs", header...)
	for _, m := range r.Rows {
		row := []string{m}
		for _, c := range r.Columns {
			sc := r.Scores[m][c]
			row = append(row, fmt.Sprintf("%.4f", sc.HR), fmt.Sprintf("%.4f", sc.NDCG))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Table VIII(b): candidate sampling strategies
// ---------------------------------------------------------------------------

// Table8bResult compares candidate-generation strategies (RQ2.3 second
// part): random uniform sampling, Latin Hypercube Sampling, and Adaptive
// Candidate Generation — all ranked by the same trained NECS, evaluated by
// the actual execution time of the top-1 choice on validation data in
// cluster C.
type Table8bResult struct {
	Strategies []string
	// MeanTopSeconds is the average actual time of each strategy's chosen
	// configuration; MeanRegret the average gap to the best candidate any
	// strategy found for that application.
	MeanTopSeconds map[string]float64
	MeanRegret     map[string]float64
}

// Table8b runs the comparison.
func Table8b(s *Suite) *Table8bResult {
	tuner := s.Tuner()
	res := &Table8bResult{
		Strategies:     []string{"Random", "LHS", "ACG"},
		MeanTopSeconds: map[string]float64{},
		MeanRegret:     map[string]float64{},
	}
	n := s.Opts.GoldCandidates
	rng := s.rng(420)
	env := sparksim.ClusterC
	sums := map[string]float64{}
	regrets := map[string]float64{}
	for _, app := range s.Apps {
		data := app.Spec.MakeData(app.Sizes.Valid)
		chosen := map[string]float64{}
		best := 0.0
		for _, strat := range res.Strategies {
			var cands []sparksim.Config
			switch strat {
			case "Random":
				for i := 0; i < n; i++ {
					cands = append(cands, core.ForceFeasible(sparksim.RandomConfig(rng), env))
				}
			case "LHS":
				for _, u := range stats.LatinHypercube(n, sparksim.NumKnobs, rng) {
					cands = append(cands, core.ForceFeasible(sparksim.FromNormalized(u), env))
				}
			case "ACG":
				cands = tuner.ACG.SampleFeasible(app.Spec.Name, data, env, n, rng)
			}
			rec := tuner.RecommendFrom(app.Spec, data, env, cands)
			actual := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
			chosen[strat] = actual
			if best == 0 || actual < best {
				best = actual
			}
		}
		for _, strat := range res.Strategies {
			sums[strat] += chosen[strat]
			regrets[strat] += chosen[strat] - best
		}
	}
	for _, strat := range res.Strategies {
		res.MeanTopSeconds[strat] = sums[strat] / float64(len(s.Apps))
		res.MeanRegret[strat] = regrets[strat] / float64(len(s.Apps))
	}
	return res
}

// Format renders Table VIII(b).
func (r *Table8bResult) Format() string {
	t := NewTable("Table VIII(b): sampling strategies ranked by NECS (validation, cluster C)",
		"strategy", "mean top-1 time (s)", "mean regret (s)")
	for _, strat := range r.Strategies {
		t.AddRow(strat, fmtSeconds(r.MeanTopSeconds[strat]), fmtSeconds(r.MeanRegret[strat]))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Table XII: generalizing across computing environments
// ---------------------------------------------------------------------------

// Table12Result evaluates NECS trained on different cluster subsets
// (NECS_AB, NECS_C, NECS_all) on cluster C validation data (RQ3.2).
type Table12Result struct {
	Variants []string
	Scores   map[string]RankingScore
}

// Table12 trains the three variants and evaluates them.
func Table12(s *Suite) *Table12Result {
	res := &Table12Result{
		Variants: []string{"NECS_AB", "NECS_C", "NECS_all"},
		Scores:   map[string]RankingScore{},
	}
	full := s.Dataset()
	subsets := map[string]func(env string) bool{
		"NECS_AB":  func(env string) bool { return env == "A" || env == "B" },
		"NECS_C":   func(env string) bool { return env == "C" },
		"NECS_all": func(env string) bool { return true },
	}
	cases := s.ValidationCases(sparksim.ClusterC, 430)
	for i, name := range res.Variants {
		keep := subsets[name]
		sub := &core.Dataset{Apps: full.Apps}
		for _, run := range full.Runs {
			if keep(run.Env.Name) {
				sub.Runs = append(sub.Runs, run)
				sub.Instances = append(sub.Instances, run.Stages...)
			}
		}
		r := NewNeuralRanker(VariantNECS, s.Opts.NECS)
		r.Fit(sub, s.rng(int64(440+i)))
		res.Scores[name] = evalRanker(r, cases, 5)
	}
	return res
}

// Format renders Table XII.
func (r *Table12Result) Format() string {
	t := NewTable("Table XII: ranking on cluster C by training environment",
		"variant", "HR@5", "NDCG@5")
	for _, v := range r.Variants {
		sc := r.Scores[v]
		t.AddRowf(v, sc.HR, sc.NDCG)
	}
	return t.String()
}
