package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFaultsExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is slow")
	}
	s := tinySuite(t)
	s.Opts.GoldCandidates = 6
	s.Opts.TuningBudgetSeconds = 1200
	r := Faults(s)

	if len(r.Intensities) != 4 || r.Intensities[0] != 0 {
		t.Fatalf("intensity grid wrong: %v", r.Intensities)
	}
	if len(r.Apps) == 0 || len(r.Apps) > 3 {
		t.Fatalf("app selection wrong: %v", r.Apps)
	}
	for _, in := range r.Intensities {
		for _, m := range r.Methods {
			etr := r.ETR[in][m]
			if math.IsNaN(etr) || math.IsInf(etr, 0) {
				t.Fatalf("ETR[%v][%s] not finite: %v", in, m, etr)
			}
			if etr > 1.0001 {
				t.Fatalf("ETR[%v][%s] above 1: %v", in, m, etr)
			}
			for _, app := range r.Apps {
				sec := r.Seconds[in][m][app]
				if sec <= 0 || math.IsNaN(sec) {
					t.Fatalf("Seconds[%v][%s][%s] = %v", in, m, app, sec)
				}
			}
		}
		for _, cl := range r.Clusters {
			hr := r.HR5[in][cl]
			if hr < 0 || hr > 1 {
				t.Fatalf("HR5[%v][%s] = %v outside [0,1]", in, cl, hr)
			}
		}
		for _, app := range r.Apps {
			if r.Tiers[in][app] == "" {
				t.Fatalf("no serving tier recorded for %s at intensity %v", app, in)
			}
		}
	}

	out := r.Format()
	for _, want := range []string{"Mean ETR", "HR@5", "serving tier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestFaultAppsOnePerFamily(t *testing.T) {
	s := tinySuite(t)
	apps := faultApps(s)
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Spec.Family] {
			t.Fatalf("family %s selected twice", a.Spec.Family)
		}
		seen[a.Spec.Family] = true
	}
}
