package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple text-table builder for experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of values formatted with %v / %.4f as appropriate.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// fmtSeconds renders a time compactly.
func fmtSeconds(s float64) string {
	if s >= 7200 {
		return "FAIL(7200)"
	}
	if s >= 100 {
		return fmt.Sprintf("%.0f", s)
	}
	return fmt.Sprintf("%.1f", s)
}
