package experiments

import (
	"fmt"
	"strings"

	"lite/internal/metrics"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// FaultsResult is the robustness study: end-to-end tuning quality (ETR) and
// ranking quality (HR@5) of LITE versus Default and BO as transient-fault
// intensity rises. The interesting question is whether LITE degrades
// gracefully — ETR shrinking smoothly with intensity — or falls off a cliff
// because a recommendation hits the failure cap.
type FaultsResult struct {
	Intensities []float64
	Apps        []string
	Clusters    []string
	Methods     []string

	// Seconds[intensity][method][app]: actual capped execution time of the
	// method's configuration on the large testing data in faulty cluster C.
	Seconds map[float64]map[string]map[string]float64
	// ETR[intensity][method]: mean ETR over apps (t_min across methods).
	ETR map[float64]map[string]float64
	// HR5[intensity][cluster]: mean HR@5 of NECS ranking on the cluster's
	// validation-size gold cases under that fault intensity.
	HR5 map[float64]map[string]float64
	// Tiers[intensity][app]: which RecommendSafe degradation tier served
	// LITE's answer.
	Tiers map[float64]map[string]string
}

// faultApps picks up to three applications, the first of each workload
// family in suite order, so the study spans ML, graph, and MapReduce
// behavior without running the full 15-app grid at every intensity.
func faultApps(s *Suite) []*workload.App {
	seen := map[string]bool{}
	var out []*workload.App
	for _, a := range s.Apps {
		if seen[a.Spec.Family] {
			continue
		}
		seen[a.Spec.Family] = true
		out = append(out, a)
		if len(out) == 3 {
			break
		}
	}
	return out
}

// Faults runs the robustness study. Intensity 0 is the fault-free baseline
// (ScaledFaults returns nil there, so the simulator takes its original code
// path); 1.0 is the full ScaledFaults profile.
func Faults(s *Suite) *FaultsResult {
	tuner := s.Tuner()
	apps := faultApps(s)
	res := &FaultsResult{
		Intensities: []float64{0, 0.3, 0.6, 1.0},
		Methods:     []string{"Default", "BO", "LITE"},
		Seconds:     map[float64]map[string]map[string]float64{},
		ETR:         map[float64]map[string]float64{},
		HR5:         map[float64]map[string]float64{},
		Tiers:       map[float64]map[string]string{},
	}
	for _, a := range apps {
		res.Apps = append(res.Apps, a.Spec.Name)
	}
	for _, cl := range sparksim.AllClusters {
		res.Clusters = append(res.Clusters, cl.Name)
	}

	for ii, in := range res.Intensities {
		faults := sparksim.ScaledFaults(in, s.Opts.Seed)
		res.Seconds[in] = map[string]map[string]float64{}
		res.Tiers[in] = map[string]string{}
		for _, m := range res.Methods {
			res.Seconds[in][m] = map[string]float64{}
		}

		// End-to-end tuning on the large testing data in faulty cluster C
		// (the Table VI setting with faults switched on).
		env := sparksim.ClusterC.WithFaults(faults)
		for ai, app := range apps {
			data := app.Spec.MakeData(app.Sizes.Test)

			defSec := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig()).Seconds
			res.Seconds[in]["Default"][app.Spec.Name] = capSeconds(defSec)

			bo := NewBOTuner(s)
			tr := bo.Tune(app, data, env, s.Opts.TuningBudgetSeconds, s.rng(int64(900+ii*40+ai)))
			res.Seconds[in]["BO"][app.Spec.Name] = capSeconds(tr.BestSeconds)

			rec, err := tuner.RecommendSafe(app.Spec, data, env)
			if err != nil {
				res.Seconds[in]["LITE"][app.Spec.Name] = sparksim.FailCap
				res.Tiers[in][app.Spec.Name] = "error"
				continue
			}
			actual := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
			res.Seconds[in]["LITE"][app.Spec.Name] = capSeconds(actual)
			res.Tiers[in][app.Spec.Name] = string(rec.Tier)
		}

		// ETR with t_min across the three methods, averaged over apps.
		res.ETR[in] = map[string]float64{}
		for _, app := range res.Apps {
			tDef := res.Seconds[in]["Default"][app]
			tMin := tDef
			for _, m := range res.Methods {
				if t := res.Seconds[in][m][app]; t < tMin {
					tMin = t
				}
			}
			for _, m := range res.Methods {
				res.ETR[in][m] += metrics.ETR(tDef, res.Seconds[in][m][app], tMin)
			}
		}
		for _, m := range res.Methods {
			res.ETR[in][m] /= float64(len(res.Apps))
		}

		// Ranking quality: HR@5 of the NECS ranking over gold candidate
		// sets executed under the same faulty environment, per cluster.
		res.HR5[in] = map[string]float64{}
		for ci, cl := range sparksim.AllClusters {
			fenv := cl.WithFaults(faults)
			rng := s.rng(int64(950 + ii*40 + ci))
			var hr float64
			for _, app := range apps {
				gc := s.GoldRanking(app, app.Sizes.Valid, fenv, s.Opts.GoldCandidates, rng)
				scores := make([]float64, len(gc.Configs))
				for i, cfg := range gc.Configs {
					scores[i] = tuner.Model.PredictApp(app.Spec, gc.Data, fenv, cfg)
				}
				hr += metrics.HRAtK(metrics.RankByScore(scores), metrics.RankByScore(gc.Actual), 5)
			}
			res.HR5[in][cl.Name] = hr / float64(len(apps))
		}
	}
	return res
}

// Format renders the robustness tables.
func (r *FaultsResult) Format() string {
	var b strings.Builder

	t := NewTable("Fault robustness: actual execution time (s), large data, faulty cluster C",
		append([]string{"intensity \\ method·app"}, r.Apps...)...)
	for _, in := range r.Intensities {
		for _, m := range r.Methods {
			row := []string{fmt.Sprintf("%.1f %s", in, m)}
			for _, app := range r.Apps {
				row = append(row, fmtSeconds(r.Seconds[in][m][app]))
			}
			t.AddRow(row...)
		}
	}
	b.WriteString(t.String())

	e := NewTable("\nMean ETR vs fault intensity (1.0 = best of all methods)",
		append([]string{"intensity"}, r.Methods...)...)
	for _, in := range r.Intensities {
		row := []string{fmt.Sprintf("%.1f", in)}
		for _, m := range r.Methods {
			row = append(row, fmt.Sprintf("%.2f", r.ETR[in][m]))
		}
		e.AddRow(row...)
	}
	b.WriteString(e.String())

	h := NewTable("\nNECS HR@5 vs fault intensity (validation data, faulty clusters)",
		append([]string{"intensity"}, r.Clusters...)...)
	for _, in := range r.Intensities {
		row := []string{fmt.Sprintf("%.1f", in)}
		for _, cl := range r.Clusters {
			row = append(row, fmt.Sprintf("%.2f", r.HR5[in][cl]))
		}
		h.AddRow(row...)
	}
	b.WriteString(h.String())

	b.WriteString("\nLITE serving tier per intensity:\n")
	for _, in := range r.Intensities {
		fmt.Fprintf(&b, "  %.1f:", in)
		for _, app := range r.Apps {
			fmt.Fprintf(&b, " %s=%s", app, r.Tiers[in][app])
		}
		b.WriteString("\n")
	}
	return b.String()
}
