package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Median(xs) != 4.5 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Fatalf("Min/Max wrong")
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("endpoint percentiles wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("P50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 25) != 2 {
		t.Fatalf("P25 = %v", Percentile(xs, 25))
	}
}

func TestArgsort(t *testing.T) {
	idx := Argsort([]float64{3, 1, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("Argsort = %v", idx)
		}
	}
}

func TestArgsortIsPermutationAndSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		idx := Argsort(xs)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			if idx[i] < 0 || idx[i] >= n || seen[idx[i]] {
				return false
			}
			seen[idx[i]] = true
			if i > 0 && xs[idx[i-1]] > xs[idx[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx := SampleWithoutReplacement(10, 5, rng)
	if len(idx) != 5 {
		t.Fatalf("got %d samples", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("invalid or duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, d := 8, 3
	pts := LatinHypercube(k, d, rng)
	if len(pts) != k {
		t.Fatalf("got %d points", len(pts))
	}
	// Each dimension must hit each stratum [i/k,(i+1)/k) exactly once.
	for j := 0; j < d; j++ {
		hit := make([]bool, k)
		for i := 0; i < k; i++ {
			v := pts[i][j]
			if v < 0 || v >= 1 {
				t.Fatalf("point outside unit cube: %v", v)
			}
			s := int(v * float64(k))
			if hit[s] {
				t.Fatalf("stratum %d hit twice in dim %d", s, j)
			}
			hit[s] = true
		}
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if math.Abs(Pearson(xs, ys)-1) > 1e-12 {
		t.Fatalf("Pearson = %v", Pearson(xs, ys))
	}
	neg := []float64{8, 6, 4, 2}
	if math.Abs(Pearson(xs, neg)+1) > 1e-12 {
		t.Fatalf("negative Pearson = %v", Pearson(xs, neg))
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if math.Abs(Spearman(xs, ys)-1) > 1e-12 {
		t.Fatalf("Spearman = %v", Spearman(xs, ys))
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	_, p := WilcoxonSignedRank(a, a)
	if p != 1 {
		t.Fatalf("identical samples p = %v, want 1", p)
	}
}

func TestWilcoxonDetectsConsistentShift(t *testing.T) {
	a := make([]float64, 20)
	b := make([]float64, 20)
	rng := rand.New(rand.NewSource(3))
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 1.0 + 0.01*rng.NormFloat64() // b consistently larger
	}
	_, p := WilcoxonSignedRank(a, b)
	if p > 0.01 {
		t.Fatalf("consistent shift not detected: p = %v", p)
	}
}

func TestWilcoxonExactSmallSample(t *testing.T) {
	// n=5 pairs, all positive differences → W = 0,
	// exact p = 2/2^5 = 0.0625 two-sided.
	a := []float64{5, 6, 7, 8, 9}
	b := []float64{1, 2, 3, 4, 5}
	w, p := WilcoxonSignedRank(a, b)
	if w != 0 {
		t.Fatalf("W = %v, want 0", w)
	}
	if math.Abs(p-0.0625) > 1e-12 {
		t.Fatalf("p = %v, want 0.0625", p)
	}
}

func TestWilcoxonPanicsOnUnequalLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WilcoxonSignedRank([]float64{1}, []float64{1, 2})
}

func TestNormalCDFAndPDF(t *testing.T) {
	if math.Abs(NormalCDF(0)-0.5) > 1e-12 {
		t.Fatalf("Φ(0) = %v", NormalCDF(0))
	}
	if math.Abs(NormalCDF(1.96)-0.975) > 1e-3 {
		t.Fatalf("Φ(1.96) = %v", NormalCDF(1.96))
	}
	if math.Abs(NormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("φ(0) = %v", NormalPDF(0))
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(xs, rng)
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
