// Package stats provides the statistical utilities the LITE reproduction
// needs: descriptive statistics, sampling helpers (including Latin
// Hypercube Sampling used by the AutoTune-style baseline), and the Wilcoxon
// signed-rank test the paper uses to report significance of Adaptive Model
// Update improvements (Table IX).
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (−Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Argsort returns indices that would sort xs ascending.
func Argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// Shuffle permutes xs in place using rng.
func Shuffle[T any](xs []T, rng *rand.Rand) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement returns k distinct indices from [0,n) chosen
// uniformly using rng. Panics if k > n.
func SampleWithoutReplacement(n, k int, rng *rand.Rand) []int {
	if k > n {
		panic("stats: sample size exceeds population")
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// LatinHypercube returns k points in the unit hypercube [0,1)^d using Latin
// Hypercube Sampling: each dimension is divided into k strata and each
// stratum is hit exactly once.
func LatinHypercube(k, d int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, k)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		perm := rng.Perm(k)
		for i := 0; i < k; i++ {
			pts[i][j] = (float64(perm[i]) + rng.Float64()) / float64(k)
		}
	}
	return pts
}

// Pearson returns the Pearson correlation coefficient of xs and ys.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of xs and ys.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	idx := Argsort(xs)
	r := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// WilcoxonSignedRank performs the two-sided Wilcoxon signed-rank test on
// paired samples and returns the W statistic and an approximate p-value
// using the normal approximation with continuity correction (ties in
// |differences| receive average ranks; zero differences are dropped,
// following Wilcoxon's original treatment). The paper reports this test for
// Table IX.
func WilcoxonSignedRank(a, b []float64) (w float64, p float64) {
	if len(a) != len(b) {
		panic("stats: Wilcoxon requires paired samples of equal length")
	}
	var diffs []float64
	for i := range a {
		if d := a[i] - b[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n == 0 {
		return 0, 1
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	r := ranks(abs)
	var wPlus, wMinus float64
	for i, d := range diffs {
		if d > 0 {
			wPlus += r[i]
		} else {
			wMinus += r[i]
		}
	}
	w = math.Min(wPlus, wMinus)
	if n < 10 {
		// Exact two-sided p-value by enumerating all 2^n sign assignments.
		var rankSum float64
		for i := 0; i < n; i++ {
			rankSum += r[i]
		}
		count := 0
		total := 1 << n
		for mask := 0; mask < total; mask++ {
			var wp float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					wp += r[i]
				}
			}
			if math.Min(wp, rankSum-wp) <= w {
				count++
			}
		}
		return w, float64(count) / float64(total)
	}
	mean := float64(n*(n+1)) / 4
	sd := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	z := (w - mean + 0.5) / sd
	return w, 2 * normalCDF(z)
}

// normalCDF returns P(Z ≤ z) for a standard normal variable.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalCDF exposes the standard normal CDF (used by the BO baseline's
// Expected Improvement acquisition).
func NormalCDF(z float64) float64 { return normalCDF(z) }

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}
