// Package lite is a from-scratch Go reproduction of "Adaptive Code
// Learning for Spark Configuration Tuning" (ICDE 2022): the LITE
// lightweight knob-recommender system, its NECS performance estimator
// (CNN code encoder + GCN scheduler encoder + tower MLP), Adaptive
// Candidate Generation, and Adaptive Model Update via adversarial
// learning — together with the substrate the evaluation needs (a
// deterministic Spark-cluster simulator, the spark-bench workloads, and
// the BO/DDPG/GBDT/RFR competitor implementations).
//
// This root package is a thin facade over the implementation packages so
// downstream users have a stable, documented entry point:
//
//	tuner, _ := lite.Train(lite.Workloads(), lite.DefaultTrainOptions())
//	app := lite.WorkloadByName("PageRank")
//	rec := tuner.Recommend(app.Spec, app.Spec.MakeData(4096), lite.ClusterC)
//	fmt.Println(rec.Config, rec.PredictedSeconds)
//
// See examples/ for runnable programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-reproduction results.
package lite

import (
	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Re-exported core types: the tuner, its estimator, and training options.
type (
	// Tuner is the LITE system: offline-trained NECS + ACG + online
	// recommendation with adaptive model update.
	Tuner = core.Tuner
	// NECS is the neural performance estimator (paper §III).
	NECS = core.NECS
	// NECSConfig sets the estimator's hyperparameters.
	NECSConfig = core.NECSConfig
	// TrainOptions bundles offline-training settings.
	TrainOptions = core.TrainOptions
	// Recommendation is the result of one online tuning request.
	Recommendation = core.Recommendation
	// SafeRecommendation is a Recommendation annotated with the
	// graceful-degradation tier that produced it (see Tuner.RecommendSafe).
	SafeRecommendation = core.SafeRecommendation
	// Tier names one level of RecommendSafe's degradation chain.
	Tier = core.Tier
	// Dataset is a collected offline training set.
	Dataset = core.Dataset

	// FaultProfile injects deterministic transient faults (executor loss,
	// task failures, fetch failures, stragglers) into simulated runs when
	// attached to an Environment.
	FaultProfile = sparksim.FaultProfile

	// Config is a point in the 16-knob configuration space (Table IV).
	Config = sparksim.Config
	// Environment describes a compute cluster (Table III).
	Environment = sparksim.Environment
	// DataSpec describes an input dataset (Table I).
	DataSpec = sparksim.DataSpec
	// AppSpec describes an analytical application and its stage plan.
	AppSpec = sparksim.AppSpec
	// App couples an application spec with its evaluation data sizes.
	App = workload.App
)

// The three evaluation clusters of Table III.
var (
	ClusterA = sparksim.ClusterA
	ClusterB = sparksim.ClusterB
	ClusterC = sparksim.ClusterC
)

// Train runs LITE's offline phase on the given applications: collect
// small-data training runs, train NECS, fit the ACG models.
func Train(apps []*App, opts TrainOptions) (*Tuner, *Dataset) {
	return core.Train(apps, opts)
}

// DefaultTrainOptions returns the standard offline-training settings.
func DefaultTrainOptions() TrainOptions { return core.DefaultTrainOptions() }

// Workloads returns all 15 spark-bench applications of Table V.
func Workloads() []*App { return workload.All() }

// WorkloadByName looks up an application by name or abbreviation
// (e.g. "PageRank" or "PR"); nil if unknown.
func WorkloadByName(name string) *App { return workload.ByName(name) }

// DefaultConfig returns Spark's out-of-the-box configuration.
func DefaultConfig() Config { return sparksim.DefaultConfig() }

// Simulate executes an application on the simulated cluster testbed and
// returns its (deterministic) execution result.
func Simulate(app *AppSpec, data DataSpec, env Environment, cfg Config) sparksim.Result {
	return sparksim.Simulate(app, data, env, cfg)
}

// ScaledFaults builds a transient-fault profile at the given intensity
// (0 returns nil — the fault-free simulator). Attach it with
// Environment.WithFaults.
func ScaledFaults(intensity float64, seed int64) *FaultProfile {
	return sparksim.ScaledFaults(intensity, seed)
}
