// Benchmark for the retrieval cold-start tier (DESIGN.md §13): a single
// Lookup against a ~10k-entry store must stay sub-millisecond on one core
// so the tier doubles as the fast path under shed pressure.
// scripts/bench_regression.sh gates it in CI. Run with:
//
//	go test -run '^$' -bench BenchmarkRetrievalLookup -benchtime 100x
package lite

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lite/internal/retrieval"
)

var (
	retrBenchOnce  sync.Once
	retrBenchStore *retrieval.Store
	retrBenchQs    [][]float64
)

// retrBench bulk-loads a store with 10k synthetic entries drawn from 40
// app families sharing per-family token vocabularies, plus 64 query
// embeddings that resemble (but do not equal) stored apps.
func retrBench() (*retrieval.Store, [][]float64) {
	retrBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		const families, perFam = 40, 250 // 10k entries
		embed := func(fam, variant int) []float64 {
			toks := make([]string, 0, 48)
			for i := 0; i < 32; i++ {
				toks = append(toks, fmt.Sprintf("fam%d_tok%d", fam, i))
			}
			for i := 0; i < 16; i++ {
				toks = append(toks, fmt.Sprintf("fam%d_v%d_%d", fam, variant, i))
			}
			ops := []string{fmt.Sprintf("fam%d_map", fam), fmt.Sprintf("fam%d_reduce", fam)}
			return retrieval.Embed(toks, ops)
		}
		entries := make([]retrieval.Entry, 0, families*perFam)
		for f := 0; f < families; f++ {
			for v := 0; v < perFam; v++ {
				entries = append(entries, retrieval.Entry{
					App:       fmt.Sprintf("app-%d-%d", f, v),
					Embedding: embed(f, v),
					SizeMB:    float64(int(64) << uint(rng.Intn(8))),
					EnvFP:     fmt.Sprintf("env%d", rng.Intn(3)),
					Seconds:   10 + rng.Float64()*1000,
				})
			}
		}
		retrBenchStore = retrieval.FromEntries(entries)
		for q := 0; q < 64; q++ {
			retrBenchQs = append(retrBenchQs, embed(q%families, 9999+q))
		}
	})
	return retrBenchStore, retrBenchQs
}

// BenchmarkRetrievalLookup measures one cold-start lookup against ~10k
// entries: embed-free (the query embedding is precomputed, as in serving
// where EmbedCode runs once per request before the cache), single-core.
func BenchmarkRetrievalLookup(b *testing.B) {
	store, qs := retrBench()
	if store.Len() == 0 {
		b.Fatal("empty bench store")
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, ok := store.Lookup(retrieval.Query{
			Embedding: qs[i%len(qs)],
			SizeMB:    1024,
			EnvFP:     "env0",
		}); ok {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("benchmark lookups never hit — index is broken")
	}
}
