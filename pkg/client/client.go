// Package client is the typed Go client for the LITE /v1 HTTP API
// (documented in API.md). It speaks the wire types of pkg/api — the same
// definitions internal/serve handles — so a request that compiles here is
// a request the server parses.
//
// Failures are typed: any non-2xx response carrying the unified error
// envelope becomes an *APIError with the server's stable code, message and
// retry hint; transport failures (connection refused, client-side
// timeout) come back as the underlying error. Callers can therefore tell
// "the server said no" from "the server is gone" without string matching.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"lite/pkg/api"
)

// Client talks to one LITE server (a liteserve instance or a litefleet
// router). Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). Default: 60s timeout.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout sets the underlying client's per-request timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// New builds a client for baseURL (e.g. "http://127.0.0.1:8372"). Any
// trailing slash or /v1 suffix is normalized away; the client always
// speaks the /v1 surface.
func New(baseURL string, opts ...Option) *Client {
	base := strings.TrimRight(baseURL, "/")
	base = strings.TrimSuffix(base, api.Version)
	c := &Client{base: base, hc: &http.Client{Timeout: 60 * time.Second}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the normalized server base (no /v1 suffix).
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response that carried the /v1 error envelope (or,
// with an empty Code, a non-envelope error body from a pre-/v1 server —
// see Message for the raw snippet).
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-matchable code (api.Code*); empty when
	// the body was not the unified envelope.
	Code string
	// Message is the server's human-readable description.
	Message string
	// RetryAfterMS is the server's backoff hint (0 = none).
	RetryAfterMS int64
	// Shard is the X-Lite-Shard header when a fleet router answered.
	Shard string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server error %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("server error %d: %s", e.Status, e.Message)
}

// RetryAfter converts the hint into a duration (0 = none).
func (e *APIError) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS) * time.Millisecond
}

// ErrorCode extracts an *APIError's stable code from err; "" when err is
// nil, not an APIError, or the body was not the envelope.
func ErrorCode(err error) string {
	var ae *APIError
	if !errors.As(err, &ae) {
		return ""
	}
	return ae.Code
}

// Meta reports transport-level details of a call for benchmarking tools.
type Meta struct {
	// Shard is the X-Lite-Shard response header (set by a fleet router;
	// empty against a bare liteserve).
	Shard string
	// Status is the HTTP status code (0 when the request never got a
	// response).
	Status int
}

// doJSON runs one call: marshal in (nil = empty body), decode a 2xx into
// out (nil = discard), turn a non-2xx into *APIError.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any, meta *Meta) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building %s request: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err // transport failure: surface the raw error for classification
	}
	defer res.Body.Close()
	if meta != nil {
		meta.Shard = res.Header.Get("X-Lite-Shard")
		meta.Status = res.StatusCode
	}
	if res.StatusCode >= 200 && res.StatusCode < 300 {
		if out == nil {
			io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20))
			return nil
		}
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s response: %w", path, err)
		}
		return nil
	}
	raw, _ := io.ReadAll(io.LimitReader(res.Body, 1<<16))
	apiErr := &APIError{Status: res.StatusCode, Shard: res.Header.Get("X-Lite-Shard")}
	var envelope api.ErrorResponse
	if jsonErr := json.Unmarshal(raw, &envelope); jsonErr == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
		apiErr.RetryAfterMS = envelope.Error.RetryAfterMS
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	return apiErr
}

// Recommend asks for a configuration (POST /v1/recommend).
func (c *Client) Recommend(ctx context.Context, req api.RecommendRequest) (api.RecommendResponse, error) {
	var resp api.RecommendResponse
	err := c.doJSON(ctx, http.MethodPost, api.Version+"/recommend", req, &resp, nil)
	return resp, err
}

// RecommendMeta is Recommend plus transport metadata (answering shard,
// status) for load tools.
func (c *Client) RecommendMeta(ctx context.Context, req api.RecommendRequest) (api.RecommendResponse, Meta, error) {
	var resp api.RecommendResponse
	var meta Meta
	err := c.doJSON(ctx, http.MethodPost, api.Version+"/recommend", req, &resp, &meta)
	return resp, meta, err
}

// Feedback reports an executed configuration (POST /v1/feedback).
func (c *Client) Feedback(ctx context.Context, req api.FeedbackRequest) (api.FeedbackResponse, error) {
	var resp api.FeedbackResponse
	err := c.doJSON(ctx, http.MethodPost, api.Version+"/feedback", req, &resp, nil)
	return resp, err
}

// Health reads GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var resp api.HealthResponse
	err := c.doJSON(ctx, http.MethodGet, api.Version+"/healthz", nil, &resp, nil)
	return resp, err
}

// Flip asks the server to hot-swap to a published snapshot
// (POST /v1/admin/flip; requires the server's admin surface).
func (c *Client) Flip(ctx context.Context, req api.FlipRequest) (api.FlipResponse, error) {
	var resp api.FlipResponse
	err := c.doJSON(ctx, http.MethodPost, api.Version+"/admin/flip", req, &resp, nil)
	return resp, err
}

// Metrics fetches the Prometheus text exposition (GET /metrics,
// unversioned by scrape convention).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", &APIError{Status: res.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	return string(raw), nil
}

// sessionPath builds /v1/tuning/sessions sub-paths with the ID escaped.
func sessionPath(parts ...string) string {
	p := api.Version + "/tuning/sessions"
	for _, part := range parts {
		p += "/" + url.PathEscape(part)
	}
	return p
}

// CreateSession opens a tuning session (POST /v1/tuning/sessions).
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (api.Session, error) {
	var resp api.Session
	err := c.doJSON(ctx, http.MethodPost, sessionPath(), req, &resp, nil)
	return resp, err
}

// GetSession reads one session, trial history included
// (GET /v1/tuning/sessions/{id}).
func (c *Client) GetSession(ctx context.Context, id string) (api.Session, error) {
	var resp api.Session
	err := c.doJSON(ctx, http.MethodGet, sessionPath(id), nil, &resp, nil)
	return resp, err
}

// ListSessions lists every session on the answering instance
// (GET /v1/tuning/sessions).
func (c *Client) ListSessions(ctx context.Context) ([]api.Session, error) {
	var resp api.SessionListResponse
	err := c.doJSON(ctx, http.MethodGet, sessionPath(), nil, &resp, nil)
	return resp.Sessions, err
}

// NextProposal asks for the session's next trial configuration
// (POST /v1/tuning/sessions/{id}/proposal). Idempotent until the returned
// trial is reported.
func (c *Client) NextProposal(ctx context.Context, id string) (api.ProposalResponse, error) {
	var resp api.ProposalResponse
	err := c.doJSON(ctx, http.MethodPost, sessionPath(id, "proposal"), nil, &resp, nil)
	return resp, err
}

// ReportResult reports a trial's measured outcome
// (POST /v1/tuning/sessions/{id}/result).
func (c *Client) ReportResult(ctx context.Context, id string, req api.ReportResultRequest) (api.ReportResultResponse, error) {
	var resp api.ReportResultResponse
	err := c.doJSON(ctx, http.MethodPost, sessionPath(id, "result"), req, &resp, nil)
	return resp, err
}

// CloseSession closes a session (DELETE /v1/tuning/sessions/{id});
// idempotent, and the closed resource stays readable.
func (c *Client) CloseSession(ctx context.Context, id string) (api.Session, error) {
	var resp api.Session
	err := c.doJSON(ctx, http.MethodDelete, sessionPath(id), nil, &resp, nil)
	return resp, err
}
