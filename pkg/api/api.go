// Package api defines the wire types of the LITE serving API, version 1.
// Every request and response body of the /v1 HTTP surface — recommend,
// feedback, health, fleet admin, and the tuning-session resource — is
// defined exactly once, here; internal/serve aliases these types for its
// handlers and pkg/client speaks them back, so client and server cannot
// drift apart.
//
// Versioning and deprecation policy are documented in API.md at the
// repository root.
package api

// Version is the current API version prefix.
const Version = "/v1"

// Error is the unified error body every /v1 endpoint returns on failure,
// wrapped in ErrorResponse: {"error": {"code", "message", "retry_after_ms"}}.
type Error struct {
	// Code is a stable, machine-matchable identifier (see the Code*
	// constants). New codes may be added; clients must tolerate unknown
	// ones.
	Code string `json:"code"`
	// Message is a human-readable description. Not stable; do not match on
	// it.
	Message string `json:"message"`
	// RetryAfterMS, when non-zero, is the server's hint for how long to
	// back off before retrying (load shedding, full queues).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the envelope around Error.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Stable error codes. HTTP status alone is ambiguous (three different 409
// conditions exist on the session resource); the code disambiguates.
const (
	// CodeInvalidArgument (400): the request body or parameters are
	// malformed or reference unknown apps/clusters/knobs.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound (404): the resource (session, route) does not exist.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed (405): wrong HTTP method for the route.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeQueueFull (429): the feedback queue cannot absorb another item.
	CodeQueueFull = "queue_full"
	// CodeOverloaded (503): admission control shed the request; retry after
	// RetryAfterMS.
	CodeOverloaded = "overloaded"
	// CodeUnavailable (503): no shard could serve the request (fleet).
	CodeUnavailable = "unavailable"
	// CodeDeadlineExceeded (504): the request's deadline elapsed inside the
	// pipeline.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeClientClosedRequest (499): the client went away first.
	CodeClientClosedRequest = "client_closed_request"
	// CodeSessionClosed (409): the tuning session is closed.
	CodeSessionClosed = "session_closed"
	// CodeBudgetExhausted (409): the session's trial budget is spent; close
	// the session or read its best config.
	CodeBudgetExhausted = "budget_exhausted"
	// CodeTrialAlreadyReported (409): this trial already has a result
	// (results are exactly-once).
	CodeTrialAlreadyReported = "trial_already_reported"
	// CodeUnknownTrial (400): the reported trial number was never proposed.
	CodeUnknownTrial = "unknown_trial"
	// CodeInternal (500): everything else.
	CodeInternal = "internal"
)

// RecommendRequest is one POST /v1/recommend call.
type RecommendRequest struct {
	App    string  `json:"app"`
	SizeMB float64 `json:"size_mb"`
	// Cluster names one of the simulated environments (A, B or C).
	Cluster string `json:"cluster"`
	// Features optionally carries enough of the application to embed it.
	// When App is absent from the server's workload registry but Features
	// is present, the request is served from the retrieval cold-start tier
	// (nearest historical neighbour) instead of being rejected with 400.
	Features *AppFeatures `json:"features,omitempty"`
}

// AppFeatures is the self-describing feature payload for applications the
// server has never trained on: raw stage source code and/or the DAG
// operation labels. At least one of the two must be non-empty for the
// request to be embeddable.
type AppFeatures struct {
	// Code is the application's (concatenated stage) source code; the
	// server tokenizes it with the same tokenizer the NECS vocabulary uses.
	Code string `json:"code,omitempty"`
	// Ops lists the stage-DAG operation labels (map, reduceByKey, …).
	Ops []string `json:"ops,omitempty"`
}

// RecommendResponse is the JSON answer to /v1/recommend.
type RecommendResponse struct {
	App string `json:"app"`
	// SizeMB echoes the caller's requested datasize. Config and
	// PredictedSeconds are bucket-granular: they are computed at the size
	// bucket's canonical size (its power-of-two upper bound), so every
	// request sharing a cache/batch key receives one consistent answer.
	SizeMB  float64 `json:"size_mb"`
	Cluster string  `json:"cluster"`
	// Config maps knob name → recommended value.
	Config map[string]float64 `json:"config"`
	// PredictedSeconds is NECS's estimate; absent on degraded tiers.
	PredictedSeconds *float64 `json:"predicted_seconds,omitempty"`
	// Tier reports which degradation level answered (necs, retrieval,
	// acg-region, safe-default). Unseen-app requests served via Features
	// always report retrieval or safe-default.
	Tier string `json:"tier"`
	// Generation is the model snapshot that produced the answer.
	Generation uint64 `json:"generation"`
	// Cached is true when the answer came from the recommendation cache;
	// Coalesced when this request shared another request's computation
	// (singleflight or in-batch dedup).
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// BatchSize is how many requests shared the inference batch (1 when
	// the batcher is disabled or the answer was cached).
	BatchSize int `json:"batch_size"`
	// OverheadMS is the server-side decision time in milliseconds.
	OverheadMS float64 `json:"overhead_ms"`
}

// FeedbackRequest reports the outcome of executing a recommendation in
// production (POST /v1/feedback). The configuration is given by knob name;
// unspecified knobs default.
type FeedbackRequest struct {
	App     string             `json:"app"`
	SizeMB  float64            `json:"size_mb"`
	Cluster string             `json:"cluster"`
	Config  map[string]float64 `json:"config,omitempty"`
}

// FeedbackResponse acknowledges queued feedback.
type FeedbackResponse struct {
	Queued bool `json:"queued"`
	// Pending is the queue depth after this item.
	Pending int `json:"pending"`
	// Generation is the model generation that will absorb this feedback
	// (at the earliest).
	Generation uint64 `json:"generation"`
	// Seq is the feedback's write-ahead-log sequence number (0 when the
	// WAL is disabled or the append failed). Once the WAL fsyncs past it,
	// the feedback survives a crash.
	Seq uint64 `json:"seq,omitempty"`
}

// HealthResponse is the JSON body of GET /v1/healthz: always 200 with
// status "ok" while the process serves (probes key on the status code
// alone), plus the signals a fleet health checker and flip coordinator act
// on.
type HealthResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Feedbacks  int    `json:"feedbacks"`
	SnapshotAt string `json:"snapshot_at"`
	// SnapshotAgeSeconds is the age of the last successfully persisted
	// snapshot; −1 when persistence is off or nothing has persisted yet.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// Inflight is the number of requests currently inside the pipeline
	// (0 when admission control is disabled).
	Inflight int `json:"inflight"`
	// WALUnfolded is the depth of accepted-but-not-yet-folded feedback in
	// the write-ahead log (0 when the WAL is off).
	WALUnfolded uint64 `json:"wal_unfolded"`
	// Follower reports fleet-follower mode: no local retraining, model
	// advances via /v1/admin/flip.
	Follower bool `json:"follower"`
	// Sessions is the number of active tuning sessions on this instance.
	Sessions int `json:"sessions"`
}

// FlipRequest asks a shard to hot-swap to an already-published snapshot
// file (POST /v1/admin/flip) as the given generation — the flip half of
// the fleet's publish-then-flip protocol.
type FlipRequest struct {
	SnapshotPath string `json:"snapshot_path"`
	Generation   uint64 `json:"generation"`
}

// FlipResponse reports the shard's live generation after the flip (which
// may exceed the requested one if a newer flip already landed).
type FlipResponse struct {
	Generation uint64 `json:"generation"`
}

// Tuning-session resource (/v1/tuning/sessions). A session is a stateful
// exploration loop for one (app, datasize, cluster): the server proposes
// candidate configurations under a safety bound, the client executes them
// and reports measured results, and winning configurations are promoted
// into the model through the feedback → adaptive-update path.

// CreateSessionRequest opens a session (POST /v1/tuning/sessions).
type CreateSessionRequest struct {
	App     string  `json:"app"`
	SizeMB  float64 `json:"size_mb"`
	Cluster string  `json:"cluster"`
	// Strategy is conservative, moderate (default) or aggressive — it sets
	// the exploration radius, the per-proposal candidate pool and the
	// default trial budget.
	Strategy string `json:"strategy,omitempty"`
	// MaxTrials overrides the strategy's trial budget (0 = strategy
	// default).
	MaxTrials int `json:"max_trials,omitempty"`
	// SafetyBound is the maximum tolerated slowdown of any proposed trial
	// relative to the session baseline, as a ratio (e.g. 1.5 = no proposal
	// may be expected to run more than 50% slower than the baseline).
	// 0 = server default.
	SafetyBound float64 `json:"safety_bound,omitempty"`
}

// Session is the session resource representation.
type Session struct {
	ID       string  `json:"id"`
	App      string  `json:"app"`
	SizeMB   float64 `json:"size_mb"`
	Cluster  string  `json:"cluster"`
	Strategy string  `json:"strategy"`
	// State is "active" or "closed".
	State       string  `json:"state"`
	SafetyBound float64 `json:"safety_bound"`
	MaxTrials   int     `json:"max_trials"`
	// TrialsUsed counts proposals issued; it is monotone and never exceeds
	// MaxTrials.
	TrialsUsed int `json:"trials_used"`
	// Violations counts reported trials whose measured time exceeded
	// SafetyBound × the measured baseline (the screening failed to prevent
	// a regression; exploration re-anchors on the best known config).
	Violations int `json:"violations"`
	// Promotions counts trials whose result was promoted into the model.
	Promotions int `json:"promotions"`

	// BaselineConfig is the static recommendation the session is anchored
	// on (trial 0 measures it). BaselinePredictedSeconds is the model's
	// estimate; BaselineSeconds is the measured time (0 until trial 0 is
	// reported).
	BaselineConfig           map[string]float64 `json:"baseline_config"`
	BaselinePredictedSeconds *float64           `json:"baseline_predicted_seconds,omitempty"`
	BaselineSeconds          float64            `json:"baseline_seconds,omitempty"`

	// Best is the fastest measured configuration so far.
	BestConfig  map[string]float64 `json:"best_config,omitempty"`
	BestSeconds float64            `json:"best_seconds,omitempty"`
	BestTrial   int                `json:"best_trial,omitempty"`

	Trials []SessionTrial `json:"trials,omitempty"`

	CreatedAt string `json:"created_at"`
	ClosedAt  string `json:"closed_at,omitempty"`
}

// SessionTrial is one proposed (and possibly reported) trial of a session.
type SessionTrial struct {
	Trial  int                `json:"trial"`
	Config map[string]float64 `json:"config"`
	// PredictedSeconds is the model's estimate for the proposal; absent
	// when the proposal came from a degraded tier.
	PredictedSeconds *float64 `json:"predicted_seconds,omitempty"`
	// Source says how the proposal was chosen: "baseline" (trial 0),
	// "explore" (a screened perturbation of the best known config) or
	// "best" (safe fallback re-proposal when no candidate passed
	// screening).
	Source   string  `json:"source"`
	Reported bool    `json:"reported"`
	Seconds  float64 `json:"seconds,omitempty"`
	Failed   bool    `json:"failed,omitempty"`
	Improved bool    `json:"improved,omitempty"`
	Promoted bool    `json:"promoted,omitempty"`
}

// SessionListResponse is GET /v1/tuning/sessions.
type SessionListResponse struct {
	Sessions []Session `json:"sessions"`
}

// ProposalResponse is POST /v1/tuning/sessions/{id}/proposal: the next
// configuration the client should execute. Re-requesting a proposal before
// reporting its result returns the same trial (idempotent; budget is spent
// per trial, not per call).
type ProposalResponse struct {
	SessionID        string             `json:"session_id"`
	Trial            int                `json:"trial"`
	Config           map[string]float64 `json:"config"`
	PredictedSeconds *float64           `json:"predicted_seconds,omitempty"`
	// Source: see SessionTrial.Source.
	Source string `json:"source"`
	// BudgetRemaining is MaxTrials − TrialsUsed after this proposal.
	BudgetRemaining int `json:"budget_remaining"`
	// Generation is the model snapshot that scored the proposal.
	Generation uint64 `json:"generation"`
	// AbortAfterSeconds is the trial's runtime guard-rail:
	// safety_bound × the measured baseline. The executing client MUST
	// abort the run once it passes this and report it failed with
	// seconds = AbortAfterSeconds — that is what makes "never regress
	// past the baseline by more than the bound" hold for every trial,
	// including the ones the screening model mispredicts. 0 while the
	// baseline itself is still unmeasured (trial 0).
	AbortAfterSeconds float64 `json:"abort_after_seconds,omitempty"`
}

// ReportResultRequest is POST /v1/tuning/sessions/{id}/result: the
// measured outcome of executing a proposal.
type ReportResultRequest struct {
	Trial   int     `json:"trial"`
	Seconds float64 `json:"seconds"`
	Failed  bool    `json:"failed,omitempty"`
}

// ReportResultResponse acknowledges a result.
type ReportResultResponse struct {
	SessionID string `json:"session_id"`
	Trial     int    `json:"trial"`
	// Improved is true when this trial set a new session best.
	Improved bool `json:"improved"`
	// Promoted is true when the result was promoted into the model via the
	// feedback → adaptive-update path (exactly once per trial).
	Promoted bool `json:"promoted"`
	// Violation is true when the measured time exceeded SafetyBound × the
	// measured baseline.
	Violation       bool    `json:"violation"`
	BestSeconds     float64 `json:"best_seconds,omitempty"`
	BaselineSeconds float64 `json:"baseline_seconds,omitempty"`
	BudgetRemaining int     `json:"budget_remaining"`
	// Promotion carries the promoted feedback body when Promoted is true;
	// a fleet router tees it to the trainer shard (the trainer owns
	// promotion).
	Promotion *FeedbackRequest `json:"promotion,omitempty"`
}
