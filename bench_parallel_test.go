// Benchmarks for the parallel scoring and training engine (see DESIGN.md
// §7). These are what scripts/bench.sh runs to produce BENCH_parallel.json:
// recommend latency at several pool widths, and Fit throughput at several
// replica counts. A small dedicated fixture keeps them fast enough for a CI
// smoke run (-benchtime=1x); the paper-scale benchmarks live in
// bench_test.go. Run with:
//
//	go test -run '^$' -bench 'BenchmarkRecommend|BenchmarkFit' -benchtime 3x
package lite

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

var (
	parBenchOnce  sync.Once
	parBenchTuner *core.Tuner
	parBenchData  *core.Dataset
)

// parBench trains one small tuner shared by all parallel benchmarks (the
// point is scoring/fit throughput, not model quality).
func parBench() (*core.Tuner, *core.Dataset) {
	parBenchOnce.Do(func() {
		apps := []*workload.App{
			workload.ByName("WordCount"),
			workload.ByName("KMeans"),
			workload.ByName("PageRank"),
		}
		opts := core.DefaultTrainOptions()
		opts.Collect.ConfigsPerInstance = 2
		opts.Collect.Sizes = []int{0}
		opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
		opts.NECS.Epochs = 2
		parBenchTuner, parBenchData = core.Train(apps, opts)
		parBenchTuner.NumCandidates = 64
	})
	return parBenchTuner, parBenchData
}

// BenchmarkRecommend measures one online recommendation (sample 64
// candidates from the ACG region, score each with NECS, rank) at several
// scoring-pool widths. The serial/1 case is the pre-pool baseline.
func BenchmarkRecommend(b *testing.B) {
	tuner, _ := parBench()
	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(app.Sizes.Train[0])
	env := sparksim.ClusterC

	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			core.SetScoreWorkers(w)
			defer core.SetScoreWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := tuner.Recommend(app.Spec, data, env)
				if len(rec.Ranked) != 64 {
					b.Fatalf("ranked %d candidates, want 64", len(rec.Ranked))
				}
			}
		})
	}
}

// BenchmarkRecommendF32 is BenchmarkRecommend with float32 serving enabled
// (the packed tower plan, DESIGN.md §12); the delta against BenchmarkRecommend
// isolates what the f32 kernel buys on top of batched f64 scoring.
func BenchmarkRecommendF32(b *testing.B) {
	tuner, _ := parBench()
	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(app.Sizes.Train[0])
	env := sparksim.ClusterC

	tuner.EnableF32Serving()
	defer tuner.DisableF32Serving()
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			core.SetScoreWorkers(w)
			defer core.SetScoreWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := tuner.Recommend(app.Spec, data, env)
				if len(rec.Ranked) != 64 {
					b.Fatalf("ranked %d candidates, want 64", len(rec.Ranked))
				}
			}
		})
	}
}

// BenchmarkFit measures NECS training throughput over the shared dataset:
// replicas=0 is the historical serial loop, replicas=1 the parallel engine's
// bit-identical mode, higher counts the data-parallel regime (one averaged
// step per K batches).
func BenchmarkFit(b *testing.B) {
	tuner, ds := parBench()
	encoded := core.EncodeAll(tuner.Model.Encoder, ds.Instances)

	for _, k := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", k), func(b *testing.B) {
			cfg := tuner.Model.Cfg
			cfg.Epochs = 2
			cfg.FitWorkers = k
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rng := rand.New(rand.NewSource(1))
				m := core.NewNECS(tuner.Model.Encoder, cfg, rng)
				b.StartTimer()
				m.Fit(encoded, rng)
			}
			b.ReportMetric(float64(len(encoded)*cfg.Epochs)/b.Elapsed().Seconds()/float64(b.N), "inst/s")
		})
	}
}
