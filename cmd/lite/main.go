// Command lite is the CLI front-end of the LITE tuner: it trains the
// estimator on simulated small-data runs and prints knob recommendations
// for an application / datasize / cluster.
//
// Usage:
//
//	lite apps                             # list the spark-bench applications
//	lite knobs                            # list the 16 tunable knobs
//	lite recommend -app PageRank -size 4096 -cluster C
//	lite simulate  -app PageRank -size 4096 -cluster C   # default vs tuned
//	lite inspect   -app Terasort          # show stages, code and DAGs
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "apps":
		cmdApps()
	case "knobs":
		cmdKnobs()
	case "recommend":
		cmdRecommend(os.Args[2:], false)
	case "simulate":
		cmdRecommend(os.Args[2:], true)
	case "inspect":
		cmdInspect(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "train":
		cmdTrain(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

// cmdTrain runs the offline phase once and persists the tuner to disk, so
// subsequent recommendations load in milliseconds instead of retraining.
func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "lite-tuner.json", "output path for the trained tuner")
	configs := fs.Int("configs", 8, "training configurations per (app,size,cluster)")
	seed := fs.Int64("seed", 1, "random seed")
	faults := fs.Float64("faults", 0, "transient-fault intensity injected into collection (0 = off, 1 = full)")
	fs.Parse(args)

	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = *configs
	opts.Seed = *seed
	if *faults > 0 {
		// Collect on fault-injecting clusters with the robust path: repeat
		// flaky runs and retry failures before accepting a censored label.
		profile := sparksim.ScaledFaults(*faults, *seed)
		clusters := make([]sparksim.Environment, len(sparksim.AllClusters))
		for i, env := range sparksim.AllClusters {
			clusters[i] = env.WithFaults(profile)
		}
		opts.Collect.Clusters = clusters
		opts.Collect.Repeats = 3
		opts.Collect.FlakyRetries = 2
	}
	fmt.Fprintf(os.Stderr, "training LITE on all %d applications…\n", len(workload.All()))
	tuner, ds := core.Train(workload.All(), opts)
	fmt.Fprintf(os.Stderr, "trained on %d runs (%d stage instances)\n", len(ds.Runs), len(ds.Instances))
	if *faults > 0 {
		st := ds.Stats
		fmt.Fprintf(os.Stderr, "robust collection: %d repeat runs, %d retries (%.0f s burned), %d censored labels\n",
			st.RepeatRuns, st.Retries, st.RetrySeconds, st.Censored)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tuner.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tuner written to %s\n", *out)
}

// cmdAnalyze sweeps each knob independently around the default (or expert)
// configuration and reports its sensitivity for the application — the kind
// of one-knob-at-a-time analysis tuning guides are built from, and a handy
// way to see the simulator's response surfaces.
func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	appName := fs.String("app", "", "application name or abbreviation")
	sizeMB := fs.Float64("size", 0, "input size in MB (default: the app's validation size)")
	cluster := fs.String("cluster", "C", "cluster A, B or C")
	points := fs.Int("points", 7, "sweep points per knob")
	fs.Parse(args)

	app := workload.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown application %q (try 'lite apps')\n", *appName)
		os.Exit(2)
	}
	env, ok := clusterByName(*cluster)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *cluster)
		os.Exit(2)
	}
	size := *sizeMB
	if size <= 0 {
		size = app.Sizes.Valid
	}
	data := app.Spec.MakeData(size)

	base := sparksim.DefaultConfig()
	baseT := sparksim.Simulate(app.Spec, data, env, base).Seconds
	fmt.Printf("%s on %.0f MB, cluster %s — default configuration: %.1f s\n\n", app.Spec.Name, size, env.Name, baseT)
	fmt.Printf("%-34s %-12s %-12s %s\n", "knob", "best value", "best time", "sensitivity (max/min over sweep)")
	for i, k := range sparksim.Knobs {
		bestV, bestT := base[i], baseT
		worstT := baseT
		for p := 0; p < *points; p++ {
			v := k.Min + (k.Max-k.Min)*float64(p)/float64(*points-1)
			cfg := base
			cfg[i] = v
			t := sparksim.Simulate(app.Spec, data, env, cfg.Clamp()).Seconds
			if t < bestT {
				bestT, bestV = t, cfg.Clamp()[i]
			}
			if t > worstT {
				worstT = t
			}
		}
		fmt.Printf("%-34s %-12.6g %-12.1f %.2fx\n", k.Name, bestV, bestT, worstT/bestT)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lite {apps|knobs|train|recommend|simulate|inspect|analyze} [flags]")
	fmt.Fprintln(os.Stderr, "  train     [-out tuner.json] [-configs N] [-seed S] [-faults X]\n  recommend -app <name> [-size MB] [-cluster A|B|C] [-faults X] [-model tuner.json]")
	fmt.Fprintln(os.Stderr, "  simulate  -app <name> [-size MB] [-cluster A|B|C] [-faults X]   (runs default vs tuned)")
	fmt.Fprintln(os.Stderr, "  inspect   -app <name>\n  analyze   -app <name> [-size MB] [-cluster A|B|C]  (per-knob sensitivity sweep)")
}

func cmdApps() {
	fmt.Printf("%-28s %-5s %-10s %s\n", "application", "abbr", "family", "train sizes (MB) / valid / test")
	for _, a := range workload.All() {
		fmt.Printf("%-28s %-5s %-10s %v / %v / %v\n",
			a.Spec.Name, a.Spec.Abbrev, a.Spec.Family, a.Sizes.Train, a.Sizes.Valid, a.Sizes.Test)
	}
}

func cmdKnobs() {
	fmt.Printf("%-34s %-8s %-18s %s\n", "knob", "default", "range", "description")
	for _, k := range sparksim.Knobs {
		unit := k.Unit
		if unit != "" {
			unit = " " + unit
		}
		fmt.Printf("%-34s %-8v [%v, %v]%-6s %s\n", k.Name, k.Default, k.Min, k.Max, unit, k.Brief)
	}
}

func clusterByName(name string) (sparksim.Environment, bool) {
	for _, e := range sparksim.AllClusters {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return sparksim.Environment{}, false
}

func cmdRecommend(args []string, alsoSimulate bool) {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	appName := fs.String("app", "", "application name or abbreviation")
	sizeMB := fs.Float64("size", 0, "input size in MB (default: the app's large testing size)")
	cluster := fs.String("cluster", "C", "cluster A, B or C")
	candidates := fs.Int("candidates", 64, "knob candidates sampled by ACG")
	configs := fs.Int("configs", 8, "training configurations per (app,size,cluster)")
	seed := fs.Int64("seed", 1, "random seed")
	faults := fs.Float64("faults", 0, "transient-fault intensity on the serving cluster (0 = off, 1 = full)")
	modelPath := fs.String("model", "", "load a tuner saved by 'lite train' instead of retraining")
	fs.Parse(args)

	app := workload.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown application %q (try 'lite apps')\n", *appName)
		os.Exit(2)
	}
	env, ok := clusterByName(*cluster)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *cluster)
		os.Exit(2)
	}
	env = env.WithFaults(sparksim.ScaledFaults(*faults, *seed))
	size := *sizeMB
	if size <= 0 {
		size = app.Sizes.Test
	}

	// Without -model, fall back to a default model file in the working
	// directory (the 'lite train' default output first) before retraining.
	path := *modelPath
	if path == "" {
		for _, candidate := range []string{"lite-tuner.json", "lite.model"} {
			if _, err := os.Stat(candidate); err == nil {
				path = candidate
				fmt.Fprintf(os.Stderr, "using default model file %s (pass -model to override)\n", path)
				break
			}
		}
	}

	var tuner *core.Tuner
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tuner, err = core.LoadTuner(f, *seed)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded tuner from %s\n", path)
	} else {
		fmt.Fprintf(os.Stderr, "no saved model found, training from scratch (offline phase, %d configs per instance)…\n", *configs)
		opts := core.DefaultTrainOptions()
		opts.Collect.ConfigsPerInstance = *configs
		opts.Seed = *seed
		tuner, _ = core.Train(workload.All(), opts)
	}
	tuner.NumCandidates = *candidates

	data := app.Spec.MakeData(size)
	rec, err := tuner.RecommendSafe(app.Spec, data, env)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recommendation for %s on %.0f MB, cluster %s (decided in %v, tier: %s):\n",
		app.Spec.Name, size, env.Name, rec.Overhead, rec.Tier)
	for _, note := range rec.Notes {
		fmt.Printf("  degraded: %s\n", note)
	}
	for i, k := range sparksim.Knobs {
		switch k.Type {
		case sparksim.KnobFloat:
			fmt.Printf("  %-34s %.2f\n", k.Name, rec.Config[i])
		case sparksim.KnobBool:
			fmt.Printf("  %-34s %v\n", k.Name, rec.Config.Bool(i))
		default:
			fmt.Printf("  %-34s %d%s\n", k.Name, int(rec.Config[i]), suffix(k.Unit))
		}
	}
	if !math.IsNaN(rec.PredictedSeconds) {
		fmt.Printf("predicted execution time: %.1f s\n", rec.PredictedSeconds)
	}

	if alsoSimulate {
		def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig())
		got := sparksim.Simulate(app.Spec, data, env, rec.Config)
		fmt.Printf("\nsimulated execution:\n")
		fmt.Printf("  default configuration: %.1f s%s\n", def.Seconds, failNote(def))
		fmt.Printf("  LITE recommendation:   %.1f s%s\n", got.Seconds, failNote(got))
		if got.Seconds > 0 && !got.Failed {
			fmt.Printf("  speedup: %.1fx\n", def.Seconds/got.Seconds)
		}
	}
}

func suffix(unit string) string {
	if unit == "" {
		return ""
	}
	return " " + unit
}

func failNote(r sparksim.Result) string {
	if r.Failed {
		return " (FAILED: " + r.FailReason + ")"
	}
	return ""
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	appName := fs.String("app", "", "application name or abbreviation")
	fs.Parse(args)
	app := workload.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown application %q (try 'lite apps')\n", *appName)
		os.Exit(2)
	}
	s := app.Spec
	fmt.Printf("%s (%s, %s)\n\nmain-body code:\n%s\n", s.Name, s.Abbrev, s.Family, indent(s.MainCode))
	fmt.Printf("\nstages (%d):\n", len(s.Stages))
	for i, st := range s.Stages {
		flags := ""
		if st.Iterated {
			flags += " [iterated]"
		}
		if st.ReadsCache {
			flags += " [reads-cache]"
		}
		fmt.Printf("\n%d. %s%s\n   DAG ops: %s\n   stage-level code:\n%s\n",
			i, st.Name, flags, strings.Join(st.Ops, " → "), indent(st.Code))
	}
}

func indent(code string) string {
	lines := strings.Split(code, "\n")
	for i := range lines {
		lines[i] = "      " + lines[i]
	}
	return strings.Join(lines, "\n")
}
