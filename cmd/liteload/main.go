// Command liteload is the load generator for the LITE recommendation
// service. By default it trains one model, then benchmarks the serving
// stack twice over identical repeated-key traffic — once with the cache
// and micro-batcher disabled (baseline) and once enabled — and reports
// p50/p99 latency, throughput, cache hit rate and inference batch sizes,
// demonstrating the win on repeated-key traffic.
//
// Usage:
//
//	liteload                          # in-process A/B benchmark
//	liteload -n 2000 -c 32 -keys 6
//	liteload -url http://127.0.0.1:8372   # drive a running liteserve
//	liteload -url http://127.0.0.1:8380   # drive a litefleet router: the
//	                                      # report adds per-shard request
//	                                      # share, p50/p99 and cache-hit skew
//	liteload -url ... -sessions           # drive tuning-session lifecycles
//	                                      # (create → propose → measure →
//	                                      # report → close) instead of
//	                                      # /v1/recommend traffic
//
// Remote mode speaks the typed /v1 client (pkg/client). A server rejection
// outside the expected overload surface (shed, queue-full, deadline) is a
// harness bug, not load: liteload fails fast with the server's error code
// and message instead of burying it in the errors column.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"lite/internal/core"
	"lite/internal/serve"
	"lite/internal/workload"
	"lite/pkg/api"
	"lite/pkg/client"
)

func main() {
	n := flag.Int("n", 400, "total recommend requests per pass")
	c := flag.Int("c", 16, "concurrent workers")
	keys := flag.Int("keys", 8, "distinct (app,size,cluster) keys in the traffic")
	seed := flag.Int64("seed", 1, "random seed (traffic shape and training)")
	configs := flag.Int("configs", 3, "training configurations per instance (in-process mode)")
	url := flag.String("url", "", "drive a running liteserve instead of in-process servers")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = none); timed-out requests count in the deadline column")
	maxInFlight := flag.Int("max-inflight", 0, "in-process passes: shed load beyond this many concurrent requests (0 = unbounded)")
	sessions := flag.Bool("sessions", false, "remote mode: drive tuning-session lifecycles (one per key) instead of recommend traffic")
	strategy := flag.String("strategy", "moderate", "session mode: exploration strategy (conservative|moderate|aggressive)")
	trials := flag.Int("trials", 0, "session mode: trial budget per session (0 = strategy default)")
	flag.Parse()

	if *sessions {
		if *url == "" {
			fmt.Fprintln(os.Stderr, "liteload: -sessions needs -url (a running liteserve or litefleet)")
			os.Exit(1)
		}
		runSessions(*url, *keys, *trials, *strategy, *seed, *timeout)
		return
	}

	reqs := makeTraffic(*n, *keys, *seed)

	if *url != "" {
		res := runRemote(*url, reqs, *c, *timeout)
		printReport([]pass{{name: "remote", res: res, n: *n}})
		return
	}

	fmt.Fprintf(os.Stderr, "training model for the benchmark…\n")
	tuner, source := trainQuick(*configs, *seed)

	baseline := serve.New(tuner.CloneForUpdate(*seed), serve.Options{
		DisableCache:   true,
		DisableBatcher: true,
		MaxInFlight:    *maxInFlight,
		SourceSample:   source,
		Seed:           *seed,
	})
	baseline.Start()
	fmt.Fprintf(os.Stderr, "pass 1/2: cache+batcher disabled (%d requests, %d workers)…\n", *n, *c)
	resBase := runLocal(baseline, reqs, *c, *timeout)
	shutdown(baseline)

	full := serve.New(tuner.CloneForUpdate(*seed), serve.Options{
		CacheTTL:     30 * time.Second,
		BatchMax:     16,
		BatchWindow:  2 * time.Millisecond,
		MaxInFlight:  *maxInFlight,
		SourceSample: source,
		Seed:         *seed,
	})
	full.Start()
	fmt.Fprintf(os.Stderr, "pass 2/2: cache+batcher enabled…\n")
	resFull := runLocal(full, reqs, *c, *timeout)
	shutdown(full)

	printReport([]pass{
		{name: "baseline (no cache, no batch)", res: resBase, n: *n},
		{name: "cache + micro-batcher", res: resFull, n: *n},
	})
	if resBase.errors == 0 && resFull.errors == 0 && resFull.wall < resBase.wall {
		fmt.Printf("\nthroughput win on repeated-key traffic: %.1fx\n",
			float64(resBase.wall)/float64(resFull.wall))
	}
}

// makeTraffic builds a deterministic repeated-key workload: keys are
// (app, size, cluster) combos, drawn Zipf-skewed so a few keys are hot —
// the regime the cache and batcher are built for.
func makeTraffic(n, keys int, seed int64) []serve.RecommendRequest {
	apps := workload.All()
	clusters := []string{"A", "B", "C"}
	sizes := []float64{256, 512, 1024, 2048, 4096}
	if keys < 1 {
		keys = 1
	}
	combos := make([]serve.RecommendRequest, keys)
	for i := range combos {
		combos[i] = serve.RecommendRequest{
			App:     apps[i%len(apps)].Spec.Name,
			SizeMB:  sizes[i%len(sizes)],
			Cluster: clusters[i%len(clusters)],
		}
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(keys-1))
	out := make([]serve.RecommendRequest, n)
	for i := range out {
		out[i] = combos[zipf.Uint64()]
	}
	return out
}

func trainQuick(configs int, seed int64) (*core.Tuner, []*core.Encoded) {
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = configs
	opts.Collect.Sizes = []int{0, 1}
	opts.Seed = seed
	tuner, ds := core.Train(workload.All(), opts)
	encoded := core.EncodeAll(tuner.Model.Encoder, ds.Instances)
	if len(encoded) > 256 {
		encoded = encoded[:256]
	}
	return tuner, encoded
}

type runResult struct {
	lats      []time.Duration
	wall      time.Duration
	errors    int
	deadline  int
	shed      int
	cached    int
	coalesced int
	batchMax  int
	batchSum  int
	batchN    int

	// Recovery-aware accounting (remote mode): down counts requests that
	// failed at the connection level — the server was dead or restarting —
	// and ttfs is the time from the start of the most recent such outage
	// window to the first success after it (how long the restart took to
	// serve again, as the client experienced it).
	down      int
	downSince time.Time
	ttfs      time.Duration

	// Per-shard accounting (fleet mode): keyed by the X-Lite-Shard header a
	// litefleet router stamps on every relayed response. Empty against a
	// single liteserve.
	shards map[string]*shardStat
}

// shardStat is one shard's slice of a remote run: its request share, its
// latency distribution, and its cache hit rate — together they show routing
// skew and whether consistent hashing is keeping each shard's cache hot.
type shardStat struct {
	n      int
	cached int
	lats   []time.Duration
}

// recordShard folds one fleet-routed response into the per-shard stats
// (caller holds the mutex).
func recordShard(res *runResult, id string, lat time.Duration, cached bool) {
	if id == "" {
		return
	}
	if res.shards == nil {
		res.shards = map[string]*shardStat{}
	}
	st := res.shards[id]
	if st == nil {
		st = &shardStat{}
		res.shards[id] = st
	}
	st.n++
	st.lats = append(st.lats, lat)
	if cached {
		st.cached++
	}
}

// markDown records one connection-level failure (caller holds the mutex).
func markDown(res *runResult) {
	res.down++
	if res.downSince.IsZero() {
		res.downSince = time.Now()
	}
}

// markUp closes an open outage window on a success (caller holds the mutex).
func markUp(res *runResult) {
	if !res.downSince.IsZero() {
		res.ttfs = time.Since(res.downSince)
		res.downSince = time.Time{}
	}
}

// countErr classifies one failed request (caller holds the mutex):
// deadline/cancel and shed failures are the expected overload surface and
// get their own columns; anything else is a hard error.
func countErr(res *runResult, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		res.deadline++
	case errors.Is(err, serve.ErrOverloaded):
		res.shed++
	default:
		res.errors++
	}
}

func runLocal(s *serve.Server, reqs []serve.RecommendRequest, workers int, timeout time.Duration) runResult {
	var mu sync.Mutex
	res := runResult{}
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				t0 := time.Now()
				resp, err := s.RecommendCtx(ctx, reqs[i])
				lat := time.Since(t0)
				cancel()
				mu.Lock()
				res.lats = append(res.lats, lat)
				if err != nil {
					countErr(&res, err)
				} else {
					record(&res, resp)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

func runRemote(url string, reqs []serve.RecommendRequest, workers int, timeout time.Duration) runResult {
	var mu sync.Mutex
	res := runResult{}
	idx := make(chan int)
	var wg sync.WaitGroup
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	cl := client.New(url, client.WithTimeout(timeout))
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				resp, meta, err := cl.RecommendMeta(context.Background(), reqs[i])
				lat := time.Since(t0)
				mu.Lock()
				res.lats = append(res.lats, lat)
				var ae *client.APIError
				switch {
				case err == nil:
					record(&res, resp)
					recordShard(&res, meta.Shard, lat, resp.Cached)
					markUp(&res)
				case errors.As(err, &ae):
					switch ae.Code {
					case api.CodeDeadlineExceeded:
						res.deadline++
					case api.CodeOverloaded, api.CodeQueueFull, api.CodeUnavailable:
						res.shed++
					default:
						// Any other server rejection (invalid_argument,
						// not_found, …) means liteload is sending requests
						// the API refuses — a harness bug. Fail fast with
						// the server's own message instead of counting it
						// as anonymous load-failure noise.
						mu.Unlock()
						fatalf("server rejected request: %v", ae)
					}
				case isTimeout(err):
					res.deadline++
				default:
					// Connection refused/reset: the server is down or mid-
					// restart. Counted apart from hard errors so a chaos run
					// can bound its restart window.
					markDown(&res)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// fatalf aborts the run with a clear message; used when the server's reply
// shows a request-shape problem no amount of retrying fixes.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "liteload: "+format+"\n", args...)
	os.Exit(1)
}

// runSessions drives one full tuning-session lifecycle per key against a
// remote server: create (the server anchors the static-safe baseline),
// then propose → measure (simulator ground truth) → report until the
// budget is spent, then close — printing per-session baseline vs best and
// the violation count. This is the session analogue of the recommend
// traffic: it exercises the whole /v1/tuning/sessions surface end to end.
func runSessions(url string, keys, trials int, strategy string, seed int64, timeout time.Duration) {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	_ = seed // traffic here is the deterministic key list itself
	cl := client.New(url, client.WithTimeout(timeout))
	ctx := context.Background()
	combos := sessionCombos(keys)

	fmt.Printf("%-12s %-8s %-8s %-10s %-9s %-9s %-7s %-6s %-5s\n",
		"app", "size_mb", "cluster", "strategy", "baseline", "best", "gain", "trials", "viol")
	var wins int
	for _, req := range combos {
		req.Strategy = strategy
		req.MaxTrials = trials
		sess, err := cl.CreateSession(ctx, req)
		if err != nil {
			fatalf("create session for %s/%g/%s: %v", req.App, req.SizeMB, req.Cluster, err)
		}
		for {
			prop, err := cl.NextProposal(ctx, sess.ID)
			if client.ErrorCode(err) == api.CodeBudgetExhausted {
				break
			}
			if err != nil {
				fatalf("proposal for %s: %v", sess.ID, err)
			}
			cfg, err := serve.ConfigFromMap(prop.Config)
			if err != nil {
				fatalf("proposal %s trial %d returned a malformed config: %v", sess.ID, prop.Trial, err)
			}
			run, err := serve.SimulateOnce(sess.App, sess.SizeMB, sess.Cluster, cfg)
			if err != nil {
				fatalf("simulating trial %d of %s: %v", prop.Trial, sess.ID, err)
			}
			seconds, failed := run.Seconds, run.Failed
			// Honor the proposal's guard-rail: a real client kills the
			// trial at abort_after_seconds; the simulator equivalent is
			// capping the reported time and flagging the run failed.
			if prop.AbortAfterSeconds > 0 && seconds > prop.AbortAfterSeconds {
				seconds, failed = prop.AbortAfterSeconds, true
			}
			if _, err := cl.ReportResult(ctx, sess.ID, api.ReportResultRequest{
				Trial: prop.Trial, Seconds: seconds, Failed: failed,
			}); err != nil {
				fatalf("reporting trial %d of %s: %v", prop.Trial, sess.ID, err)
			}
		}
		final, err := cl.CloseSession(ctx, sess.ID)
		if err != nil {
			fatalf("closing %s: %v", sess.ID, err)
		}
		gain := "-"
		if final.BestSeconds > 0 && final.BaselineSeconds > 0 {
			g := 100 * (final.BaselineSeconds - final.BestSeconds) / final.BaselineSeconds
			gain = fmt.Sprintf("%+.1f%%", g)
			if g > 0 {
				wins++
			}
		}
		fmt.Printf("%-12s %-8g %-8s %-10s %-9.1f %-9.1f %-7s %-6d %-5d\n",
			final.App, final.SizeMB, final.Cluster, final.Strategy,
			final.BaselineSeconds, final.BestSeconds, gain, final.TrialsUsed, final.Violations)
	}
	fmt.Printf("\n%d/%d sessions beat their static-safe baseline\n", wins, len(combos))
}

// sessionCombos picks `keys` distinct (app, size, cluster) targets, the
// same combo universe makeTraffic draws from.
func sessionCombos(keys int) []api.CreateSessionRequest {
	apps := workload.All()
	clusters := []string{"A", "B", "C"}
	sizes := []float64{256, 512, 1024, 2048, 4096}
	if keys < 1 {
		keys = 1
	}
	out := make([]api.CreateSessionRequest, keys)
	for i := range out {
		out[i] = api.CreateSessionRequest{
			App:     apps[i%len(apps)].Spec.Name,
			SizeMB:  sizes[i%len(sizes)],
			Cluster: clusters[i%len(clusters)],
		}
	}
	return out
}

// isTimeout reports whether a remote request failed on its client-side
// deadline (http.Client.Timeout surfaces as a net.Error with Timeout true,
// not always as a wrapped context.DeadlineExceeded).
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// record folds one response into the result (caller holds the mutex).
func record(res *runResult, resp serve.RecommendResponse) {
	if resp.Cached {
		res.cached++
	}
	if resp.Coalesced {
		res.coalesced++
	}
	if resp.BatchSize > 0 && !resp.Cached {
		res.batchSum += resp.BatchSize
		res.batchN++
		if resp.BatchSize > res.batchMax {
			res.batchMax = resp.BatchSize
		}
	}
}

type pass struct {
	name string
	res  runResult
	n    int
}

func printReport(passes []pass) {
	fmt.Printf("\n%-30s %-8s %-7s %-9s %-5s %-6s %-9s %-10s %-10s %-12s %-10s %-11s %s\n",
		"pass", "reqs", "errors", "deadline", "shed", "down", "ttfs", "p50", "p99", "throughput", "cache-hit", "mean-batch", "max-batch")
	for _, p := range passes {
		r := p.res
		sort.Slice(r.lats, func(a, b int) bool { return r.lats[a] < r.lats[b] })
		served := len(r.lats)
		hitRate := 0.0
		if served > 0 {
			hitRate = float64(r.cached) / float64(served)
		}
		meanBatch := 0.0
		if r.batchN > 0 {
			meanBatch = float64(r.batchSum) / float64(r.batchN)
		}
		ttfs := "-"
		if r.ttfs > 0 {
			ttfs = roundDur(r.ttfs).String()
		}
		fmt.Printf("%-30s %-8d %-7d %-9d %-5d %-6d %-9s %-10v %-10v %-12s %-10s %-11.2f %d\n",
			p.name, p.n, r.errors, r.deadline, r.shed, r.down, ttfs,
			roundDur(quantile(r.lats, 0.50)),
			roundDur(quantile(r.lats, 0.99)),
			fmt.Sprintf("%.0f/s", float64(served)/r.wall.Seconds()),
			fmt.Sprintf("%.0f%%", hitRate*100),
			meanBatch, r.batchMax)
	}
	for _, p := range passes {
		printShardReport(p.res)
	}
}

// printShardReport breaks a fleet run down by answering shard: request
// share (how evenly the ring spread this traffic), per-shard p50/p99, and
// per-shard cache-hit rate (skew here means some shards' arcs carry the hot
// keys). Prints nothing for single-server runs.
func printShardReport(r runResult) {
	if len(r.shards) == 0 {
		return
	}
	ids := make([]string, 0, len(r.shards))
	total := 0
	for id, st := range r.shards {
		ids = append(ids, id)
		total += st.n
	}
	sort.Strings(ids)
	fmt.Printf("\nper-shard (%d shards answered):\n", len(ids))
	fmt.Printf("%-10s %-8s %-7s %-10s %-10s %s\n", "shard", "reqs", "share", "p50", "p99", "cache-hit")
	for _, id := range ids {
		st := r.shards[id]
		sort.Slice(st.lats, func(a, b int) bool { return st.lats[a] < st.lats[b] })
		fmt.Printf("%-10s %-8d %-7s %-10v %-10v %.0f%%\n",
			id, st.n,
			fmt.Sprintf("%.0f%%", 100*float64(st.n)/float64(total)),
			roundDur(quantile(st.lats, 0.50)),
			roundDur(quantile(st.lats, 0.99)),
			100*float64(st.cached)/float64(st.n))
	}
}

// roundDur rounds to ~3 significant figures so microsecond cache hits and
// second-scale cold inferences both print readably.
func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond)
	default:
		return d
	}
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func shutdown(s *serve.Server) {
	done := make(chan struct{})
	go func() { time.Sleep(30 * time.Second); close(done) }()
	if err := s.Shutdown(done); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
