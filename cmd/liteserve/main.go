// Command liteserve runs the LITE recommendation service: an HTTP server
// that serves knob recommendations from an immutable model snapshot,
// micro-batches concurrent inference, caches repeated-key answers, and
// folds posted execution feedback back into the model with an online
// adaptive-update loop that hot-swaps snapshots without blocking readers.
//
// Usage:
//
//	liteserve                                # train a quick model, serve on :8372
//	liteserve -model lite-tuner.json         # serve a tuner saved by 'lite train'
//	liteserve -addr 127.0.0.1:0 -snapshot s.json -wal-dir wal/   # crash-safe state
//
// Endpoints (full reference: API.md):
//
//	POST /v1/recommend  {"app":"PageRank","size_mb":4096,"cluster":"C"}
//	POST /v1/feedback   {"app":"PageRank","size_mb":4096,"cluster":"C","config":{...}}
//	GET  /v1/healthz    (JSON: generation, snapshot age, inflight, wal depth)
//	*    /v1/tuning/sessions[/{id}[/proposal|/result]]  (online tuning sessions)
//	GET  /metrics
//	POST /v1/admin/flip (only with -admin / -follower: fleet hot-swap)
//
// The unversioned spellings (/recommend, /feedback, /healthz, /admin/flip)
// remain as deprecated shims: same behaviour, plus a Deprecation header
// and the lite_http_legacy_requests_total counter.
//
// As a fleet shard (cmd/litefleet spawns these): -follower disables local
// retraining so the model only moves via coordinated flips, and the
// `listening addr=` stdout line reports the kernel-assigned port when
// -addr ends in :0.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lite/internal/core"
	"lite/internal/retrieval"
	"lite/internal/serve"
	"lite/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (use :0 for a random port)")
	modelPath := flag.String("model", "", "load a tuner saved by 'lite train' instead of training at boot")
	configs := flag.Int("configs", 3, "training configurations per (app,size,cluster) when training at boot")
	trainSizes := flag.Int("train-sizes", 2, "how many of the four training datasizes to collect (1-4)")
	seed := flag.Int64("seed", 1, "random seed")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Second, "recommendation cache TTL")
	noCache := flag.Bool("no-cache", false, "disable the recommendation cache")
	batchMax := flag.Int("batch-max", 16, "max requests per inference micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch latency cutoff")
	noBatch := flag.Bool("no-batch", false, "disable inference micro-batching")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline for /recommend and /feedback (0 = none); blown deadlines return 504")
	maxInFlight := flag.Int("max-inflight", 256, "max concurrent requests in the pipeline before load shedding (0 = unbounded); shed requests return 503 + Retry-After")
	updateBatch := flag.Int("update-batch", 8, "feedback runs per adaptive model update")
	snapshotPath := flag.String("snapshot", "", "persist each published model snapshot to this file; an existing file is loaded at boot (crash resume)")
	walDir := flag.String("wal-dir", "", "feedback write-ahead-log directory: accepted feedback survives a crash and replays at the next boot")
	walSyncEvery := flag.Int("wal-sync-every", 8, "fsync the feedback WAL every N appends (1 = durable before every ack)")
	walSyncInterval := flag.Duration("wal-sync-interval", 50*time.Millisecond, "background WAL fsync interval (negative disables it)")
	noValidation := flag.Bool("no-validation", false, "publish retrained models without the held-out validation gate")
	validationCases := flag.Int("validation-cases", 6, "held-out (app, datasize, cluster) tuples the hot-swap gate scores")
	chaosCorruptEvery := flag.Int("chaos-corrupt-every", 0, "CHAOS: poison every Nth retrained candidate's weights (drives the gate's rejection path; 0 = off)")
	chaosPanicEvery := flag.Int("chaos-panic-every", 0, "CHAOS: panic inside every Nth retrain (drives the update-loop supervisor's restart path; 0 = off)")
	sourceSampleN := flag.Int("source-sample", 256, "source-domain instances mixed into each update (0 with -model)")
	workers := flag.Int("workers", 0, "candidate-scoring goroutines (0 = GOMAXPROCS, 1 = serial)")
	fitWorkers := flag.Int("fit-workers", 0, "data-parallel training replicas for boot-train and adaptive updates (0 = serial)")
	follower := flag.Bool("follower", false, "fleet follower mode: no local retraining, the model advances only via POST /admin/flip (implies -admin)")
	admin := flag.Bool("admin", false, "expose POST /v1/admin/flip (fleet-coordinated hot-swap)")
	sessionDir := flag.String("session-dir", "", "tuning-session WAL+snapshot directory (default <wal-dir>/sessions when -wal-dir is set; empty without it = in-memory sessions)")
	sessionBound := flag.Float64("session-bound", 0, "default session safety bound: a trial is a violation when it runs worse than bound x the measured baseline (0 = built-in 1.5)")
	f32 := flag.Bool("f32", false, "serve with the packed float32 inference plan (train/validate stay float64; see DESIGN.md §12)")
	flag.Parse()

	// Resize the scoring pool before boot-training so the first model's
	// recommendations already fan out.
	core.SetScoreWorkers(*workers)

	tuner, source, err := loadOrTrain(*snapshotPath, *modelPath, *configs, *trainSizes, *seed, *sourceSampleN, *fitWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := serve.New(tuner, serve.Options{
		CacheTTL:        *cacheTTL,
		DisableCache:    *noCache,
		BatchMax:        *batchMax,
		BatchWindow:     *batchWindow,
		DisableBatcher:  *noBatch,
		RequestTimeout:  *requestTimeout,
		MaxInFlight:     *maxInFlight,
		UpdateBatch:     *updateBatch,
		SourceSample:    source,
		SnapshotPath:    *snapshotPath,
		WALDir:          *walDir,
		WALSyncEvery:    *walSyncEvery,
		WALSyncInterval: *walSyncInterval,
		Validation: serve.ValidationOptions{
			Enable: !*noValidation,
			Cases:  *validationCases,
		},
		ChaosCorruptEveryN:  *chaosCorruptEvery,
		ChaosPanicEveryN:    *chaosPanicEvery,
		Seed:                *seed,
		FitWorkers:          *fitWorkers,
		Follower:            *follower,
		EnableAdmin:         *admin,
		SessionDir:          *sessionDir,
		SessionDefaultBound: *sessionBound,
		Float32:             *f32,
	})
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "liteserve:", err)
		os.Exit(1)
	}
	if *walDir != "" {
		fmt.Printf("liteserve: WAL recovery: %d records replayed, %d corrupt tails skipped\n",
			s.Metrics().Counter("lite_wal_recovered_records_total").Value(),
			s.Metrics().Counter("lite_wal_corrupt_records_total").Value())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The addr= line is the machine-parseable contract a fleet supervisor
	// (cmd/litefleet) keys on to learn a shard's kernel-assigned ephemeral
	// port without races; the human-readable line follows for scripts
	// (make serve-smoke) and operators.
	fmt.Printf("liteserve: listening addr=%s\n", ln.Addr())
	fmt.Printf("liteserve: listening on http://%s (generation %d)\n", ln.Addr(), s.Snapshot().Gen)

	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("liteserve: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "liteserve: %v\n", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "liteserve: http shutdown: %v\n", err)
	}
	if err := s.Shutdown(ctx.Done()); err != nil {
		fmt.Fprintf(os.Stderr, "liteserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("liteserve: stopped at generation %d (%d feedbacks folded in)\n",
		s.Snapshot().Gen, s.Snapshot().Feedbacks)
}

// loadOrTrain picks the boot model in crash-resume order: an existing
// -snapshot file (the adapted state a previous process persisted before it
// died) wins over -model (the offline baseline), which wins over training a
// fresh model at boot with reduced collection settings.
func loadOrTrain(snapshotPath, modelPath string, configs, trainSizes int, seed int64, sourceN, fitWorkers int) (*core.Tuner, []*core.Encoded, error) {
	if snapshotPath != "" {
		if f, err := os.Open(snapshotPath); err == nil {
			defer f.Close()
			tuner, err := core.LoadTuner(f, seed)
			if err != nil {
				// A snapshot that exists but does not load is a hard error:
				// silently discarding adapted state and serving a colder
				// model would mask the corruption.
				return nil, nil, fmt.Errorf("liteserve: resuming from snapshot %s: %w", snapshotPath, err)
			}
			fmt.Printf("liteserve: resumed adapted model from snapshot %s\n", snapshotPath)
			// Snapshots do not serialize the retrieval store; boot with an
			// empty one and let absorbed feedback repopulate it.
			tuner.Retrieval = retrieval.New()
			return tuner, nil, nil
		}
	}
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		tuner, err := core.LoadTuner(f, seed)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("liteserve: loaded tuner from %s (updates will use target-domain feedback only)\n", modelPath)
		tuner.Retrieval = retrieval.New()
		return tuner, nil, nil
	}

	if trainSizes < 1 {
		trainSizes = 1
	}
	if trainSizes > 4 {
		trainSizes = 4
	}
	sizes := make([]int, trainSizes)
	for i := range sizes {
		sizes[i] = i
	}
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = configs
	opts.Collect.Sizes = sizes
	opts.Seed = seed
	opts.NECS.FitWorkers = fitWorkers
	fmt.Printf("liteserve: training at boot (%d apps, %d sizes, %d configs per instance)…\n",
		len(workload.All()), trainSizes, configs)
	start := time.Now()
	tuner, ds := core.Train(workload.All(), opts)
	fmt.Printf("liteserve: trained on %d runs (%d stage instances) in %v\n",
		len(ds.Runs), len(ds.Instances), time.Since(start).Round(time.Millisecond))
	// The training runs double as the retrieval cold-start corpus: unseen
	// apps are served by their nearest historical neighbour from boot.
	tuner.Retrieval = retrieval.BuildFromRuns(ds.Runs)
	fmt.Printf("liteserve: retrieval store seeded with %d best-known configs\n", tuner.Retrieval.Len())

	encoded := core.EncodeAll(tuner.Model.Encoder, ds.Instances)
	source := sampleEncoded(encoded, sourceN, rand.New(rand.NewSource(seed+13)))
	return tuner, source, nil
}

func sampleEncoded(data []*core.Encoded, n int, rng *rand.Rand) []*core.Encoded {
	if n <= 0 || n >= len(data) {
		return data
	}
	out := make([]*core.Encoded, n)
	for i, j := range rng.Perm(len(data))[:n] {
		out[i] = data[j]
	}
	return out
}
