// Command liteserve runs the LITE recommendation service: an HTTP server
// that serves knob recommendations from an immutable model snapshot,
// micro-batches concurrent inference, caches repeated-key answers, and
// folds posted execution feedback back into the model with an online
// adaptive-update loop that hot-swaps snapshots without blocking readers.
//
// Usage:
//
//	liteserve                                # train a quick model, serve on :8372
//	liteserve -model lite-tuner.json         # serve a tuner saved by 'lite train'
//	liteserve -addr 127.0.0.1:0 -snapshot s.json
//
// Endpoints:
//
//	POST /recommend  {"app":"PageRank","size_mb":4096,"cluster":"C"}
//	POST /feedback   {"app":"PageRank","size_mb":4096,"cluster":"C","config":{...}}
//	GET  /healthz
//	GET  /metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lite/internal/core"
	"lite/internal/serve"
	"lite/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (use :0 for a random port)")
	modelPath := flag.String("model", "", "load a tuner saved by 'lite train' instead of training at boot")
	configs := flag.Int("configs", 3, "training configurations per (app,size,cluster) when training at boot")
	trainSizes := flag.Int("train-sizes", 2, "how many of the four training datasizes to collect (1-4)")
	seed := flag.Int64("seed", 1, "random seed")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Second, "recommendation cache TTL")
	noCache := flag.Bool("no-cache", false, "disable the recommendation cache")
	batchMax := flag.Int("batch-max", 16, "max requests per inference micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch latency cutoff")
	noBatch := flag.Bool("no-batch", false, "disable inference micro-batching")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline for /recommend and /feedback (0 = none); blown deadlines return 504")
	maxInFlight := flag.Int("max-inflight", 256, "max concurrent requests in the pipeline before load shedding (0 = unbounded); shed requests return 503 + Retry-After")
	updateBatch := flag.Int("update-batch", 8, "feedback runs per adaptive model update")
	snapshotPath := flag.String("snapshot", "", "persist each published model snapshot to this file")
	sourceSampleN := flag.Int("source-sample", 256, "source-domain instances mixed into each update (0 with -model)")
	workers := flag.Int("workers", 0, "candidate-scoring goroutines (0 = GOMAXPROCS, 1 = serial)")
	fitWorkers := flag.Int("fit-workers", 0, "data-parallel training replicas for boot-train and adaptive updates (0 = serial)")
	flag.Parse()

	// Resize the scoring pool before boot-training so the first model's
	// recommendations already fan out.
	core.SetScoreWorkers(*workers)

	tuner, source, err := loadOrTrain(*modelPath, *configs, *trainSizes, *seed, *sourceSampleN, *fitWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := serve.New(tuner, serve.Options{
		CacheTTL:       *cacheTTL,
		DisableCache:   *noCache,
		BatchMax:       *batchMax,
		BatchWindow:    *batchWindow,
		DisableBatcher: *noBatch,
		RequestTimeout: *requestTimeout,
		MaxInFlight:    *maxInFlight,
		UpdateBatch:    *updateBatch,
		SourceSample:   source,
		SnapshotPath:   *snapshotPath,
		Seed:           *seed,
		FitWorkers:     *fitWorkers,
	})
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Printed to stdout so scripts (make serve-smoke) can discover a
	// randomly assigned port.
	fmt.Printf("liteserve: listening on http://%s (generation %d)\n", ln.Addr(), s.Snapshot().Gen)

	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("liteserve: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "liteserve: %v\n", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "liteserve: http shutdown: %v\n", err)
	}
	if err := s.Shutdown(ctx.Done()); err != nil {
		fmt.Fprintf(os.Stderr, "liteserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("liteserve: stopped at generation %d (%d feedbacks folded in)\n",
		s.Snapshot().Gen, s.Snapshot().Feedbacks)
}

// loadOrTrain either loads a persisted tuner or trains one at boot with
// reduced collection settings (serving wants a warm model quickly; a
// production deployment passes -model).
func loadOrTrain(modelPath string, configs, trainSizes int, seed int64, sourceN, fitWorkers int) (*core.Tuner, []*core.Encoded, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		tuner, err := core.LoadTuner(f, seed)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("liteserve: loaded tuner from %s (updates will use target-domain feedback only)\n", modelPath)
		return tuner, nil, nil
	}

	if trainSizes < 1 {
		trainSizes = 1
	}
	if trainSizes > 4 {
		trainSizes = 4
	}
	sizes := make([]int, trainSizes)
	for i := range sizes {
		sizes[i] = i
	}
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = configs
	opts.Collect.Sizes = sizes
	opts.Seed = seed
	opts.NECS.FitWorkers = fitWorkers
	fmt.Printf("liteserve: training at boot (%d apps, %d sizes, %d configs per instance)…\n",
		len(workload.All()), trainSizes, configs)
	start := time.Now()
	tuner, ds := core.Train(workload.All(), opts)
	fmt.Printf("liteserve: trained on %d runs (%d stage instances) in %v\n",
		len(ds.Runs), len(ds.Instances), time.Since(start).Round(time.Millisecond))

	encoded := core.EncodeAll(tuner.Model.Encoder, ds.Instances)
	source := sampleEncoded(encoded, sourceN, rand.New(rand.NewSource(seed+13)))
	return tuner, source, nil
}

func sampleEncoded(data []*core.Encoded, n int, rng *rand.Rand) []*core.Encoded {
	if n <= 0 || n >= len(data) {
		return data
	}
	out := make([]*core.Encoded, n)
	for i, j := range rng.Perm(len(data))[:n] {
		out[i] = data[j]
	}
	return out
}
