// Command litefleet runs the sharded LITE serving tier (DESIGN.md §10): it
// trains (or loads) one boot model, spawns N liteserve shard processes on
// ephemeral ports — shard0 as the trainer with a feedback WAL and snapshot
// persistence, the rest as followers — and serves a consistent-hash router
// in front of them. Requests are placed by the same (app, datasize bucket,
// env fingerprint) key the per-shard cache and batcher use, dead or slow
// shards are health-checked out of the ring (their arc falls to ring
// successors) and re-admitted with backoff when they recover, crashed
// shard processes are restarted, and every model generation the trainer
// validates and persists is flipped fleet-wide so all shards serve the
// same weights.
//
// Usage:
//
//	litefleet -shards 4                        # train a quick model, serve on :8380
//	litefleet -shards 3 -model lite-tuner.json -dir fleet-state/
//	liteload -url http://127.0.0.1:8380        # drive the fleet
//
// Router endpoints: POST /recommend, POST /feedback (proxied by key),
// GET /healthz (fleet + per-shard JSON), GET /metrics (lite_fleet_*).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"lite/internal/core"
	"lite/internal/fleet"
	"lite/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8380", "router listen address (use :0 for a random port)")
	shards := flag.Int("shards", 3, "liteserve shard processes to run (shard0 is the trainer)")
	dir := flag.String("dir", "", "fleet state directory (default: a fresh temp dir); holds the boot model and per-shard WAL/snapshot state")
	modelPath := flag.String("model", "", "boot model for every shard (a tuner saved by 'lite train'); trains one at boot when empty")
	liteserveBin := flag.String("liteserve", "", "liteserve binary to spawn (default: next to this binary, else $PATH)")
	configs := flag.Int("configs", 3, "training configurations per (app,size,cluster) when training at boot")
	trainSizes := flag.Int("train-sizes", 2, "how many of the four training datasizes to collect at boot (1-4)")
	seed := flag.Int64("seed", 1, "random seed (boot training and shard seeds)")
	updateBatch := flag.Int("update-batch", 8, "trainer: feedback runs per adaptive model update")
	noValidation := flag.Bool("no-validation", false, "trainer: publish retrained models without the held-out validation gate")
	validationCases := flag.Int("validation-cases", 6, "trainer: held-out tuples the hot-swap gate scores")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "health-check cadence per shard")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health probe timeout (a slower shard counts as failed)")
	failAfter := flag.Int("fail-after", 2, "consecutive failed probes before a shard is ejected from the ring")
	recoverAfter := flag.Int("recover-after", 2, "consecutive good probes before an ejected shard is re-admitted")
	flag.Parse()

	if err := run(*addr, *shards, *dir, *modelPath, *liteserveBin, *configs, *trainSizes, *seed,
		*updateBatch, *noValidation, *validationCases,
		*probeInterval, *probeTimeout, *failAfter, *recoverAfter); err != nil {
		fmt.Fprintln(os.Stderr, "litefleet:", err)
		os.Exit(1)
	}
}

func run(addr string, shards int, dir, modelPath, liteserveBin string, configs, trainSizes int, seed int64,
	updateBatch int, noValidation bool, validationCases int,
	probeInterval, probeTimeout time.Duration, failAfter, recoverAfter int) error {

	bin, err := findLiteserve(liteserveBin)
	if err != nil {
		return err
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "litefleet-")
		if err != nil {
			return err
		}
		dir = d
		fmt.Printf("litefleet: state dir %s\n", dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	modelPath, err = ensureModel(modelPath, dir, configs, trainSizes, seed)
	if err != nil {
		return err
	}

	router := fleet.NewRouter(fleet.Options{
		ProbeInterval:   probeInterval,
		ProbeTimeout:    probeTimeout,
		FailAfter:       failAfter,
		RecoverAfter:    recoverAfter,
		TrainerID:       "shard0",
		TrainerSnapshot: filepath.Join(dir, "shard0", "snapshot.json"),
	})
	sup := fleet.NewSupervisor(router, fleet.SupervisorOptions{
		Bin:             bin,
		Dir:             dir,
		Shards:          shards,
		ModelPath:       modelPath,
		UpdateBatch:     updateBatch,
		NoValidation:    noValidation,
		ValidationCases: validationCases,
		Seed:            seed,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	router.Start()
	sup.Start()
	// Same machine-parseable contract as liteserve: scripts key on addr=.
	fmt.Printf("litefleet: listening addr=%s\n", ln.Addr())
	fmt.Printf("litefleet: routing for %d shards on http://%s\n", shards, ln.Addr())

	httpSrv := &http.Server{Handler: router.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("litefleet: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "litefleet: %v\n", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "litefleet: http shutdown: %v\n", err)
	}
	sup.Stop(20 * time.Second)
	router.Stop()
	fmt.Println("litefleet: stopped")
	return nil
}

// findLiteserve resolves the shard binary: an explicit flag wins, then a
// liteserve next to the litefleet executable (the layout `go build -o
// dir/ ./cmd/...` and the smoke scripts produce), then $PATH.
func findLiteserve(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "liteserve")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("liteserve"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("no liteserve binary found (build one next to litefleet or pass -liteserve)")
}

// ensureModel guarantees a boot-model file every shard can load: the given
// path when set, otherwise one trained now with reduced collection
// settings and saved into the fleet dir.
func ensureModel(modelPath, dir string, configs, trainSizes int, seed int64) (string, error) {
	if modelPath != "" {
		if _, err := os.Stat(modelPath); err != nil {
			return "", fmt.Errorf("boot model: %w", err)
		}
		return modelPath, nil
	}
	if trainSizes < 1 {
		trainSizes = 1
	}
	if trainSizes > 4 {
		trainSizes = 4
	}
	sizes := make([]int, trainSizes)
	for i := range sizes {
		sizes[i] = i
	}
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = configs
	opts.Collect.Sizes = sizes
	opts.Seed = seed
	fmt.Printf("litefleet: training boot model (%d apps, %d sizes, %d configs per instance)…\n",
		len(workload.All()), trainSizes, configs)
	start := time.Now()
	tuner, ds := core.Train(workload.All(), opts)
	fmt.Printf("litefleet: trained on %d runs in %v\n", len(ds.Runs), time.Since(start).Round(time.Millisecond))

	path := filepath.Join(dir, "boot-model.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := tuner.Save(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}
