// Command litebench regenerates the paper's tables and figures on the
// sparksim testbed.
//
// Usage:
//
//	litebench -exp table6          # one experiment
//	litebench -exp all             # the full evaluation section
//	litebench -list                # show available experiments
//	litebench -exp table7 -configs 8 -seed 3
//
// Experiment ids follow the paper: fig1, table6 (includes fig7), fig8,
// table7, fig9, table8 (a and b), table9, table10, table11, fig10, table12,
// overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lite/internal/core"
	"lite/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	seed := flag.Int64("seed", 1, "random seed")
	configs := flag.Int("configs", 8, "sampled configurations per (app,size,cluster) in training")
	candidates := flag.Int("candidates", 20, "candidates per gold ranking case")
	workers := flag.Int("workers", 0, "candidate-scoring goroutines (0 = GOMAXPROCS, 1 = serial)")
	fitWorkers := flag.Int("fit-workers", 0, "data-parallel training replicas (0 = serial, bit-identical to historical runs)")
	flag.Parse()

	core.SetScoreWorkers(*workers)

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.ConfigsPerInstance = *configs
	opts.GoldCandidates = *candidates
	opts.NECS.FitWorkers = *fitWorkers
	suite := experiments.NewSuite(opts)

	runners := map[string]func() string{
		"fig1":      func() string { return experiments.Figure1(suite).Format() },
		"table6":    func() string { return experiments.Table6(suite).Format() },
		"fig8":      func() string { return experiments.Figure8(suite).Format() },
		"table7":    func() string { return experiments.Table7(suite).Format() },
		"fig9":      func() string { return experiments.Figure9(suite).Format() },
		"table8":    func() string { return experiments.Table8a(suite).Format() + "\n" + experiments.Table8b(suite).Format() },
		"table9":    func() string { return experiments.Table9(suite).Format() },
		"table10":   func() string { return experiments.Table10(suite).Format() },
		"table11":   func() string { return experiments.Table11(suite).Format() },
		"fig10":     func() string { return experiments.Figure10(suite, nil, 0).Format() },
		"table12":   func() string { return experiments.Table12(suite).Format() },
		"overhead":  func() string { return experiments.ColdStartOverhead(suite).Format() },
		"extra":     func() string { return experiments.Extra(suite).Format() },
		"ablation":  func() string { return experiments.Ablation(suite).Format() },
		"faults":    func() string { return experiments.Faults(suite).Format() },
		"sessions":  func() string { return experiments.Sessions(suite).Format() },
		"coldstart": func() string { return experiments.ColdStartRetrieval(suite).Format() },
	}
	order := []string{"fig1", "fig9", "table6", "fig8", "table7", "table8", "table9", "table10", "table11", "fig10", "table12", "overhead", "extra", "ablation", "faults", "sessions", "coldstart"}

	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(id string) {
		f, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		out := f()
		fmt.Printf("=== %s (ran in %v) ===\n%s\n", id, time.Since(start).Round(time.Millisecond), out)
	}
	if *exp == "all" {
		for _, id := range order {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
