#!/usr/bin/env bash
# Run the parallel-engine benchmarks (bench_parallel_test.go) and emit
# BENCH_parallel.json: machine shape, per-benchmark ns/op, and the
# serial-vs-parallel speedups for recommendation scoring and NECS training.
#
# Usage:
#   ./scripts/bench.sh              # default -benchtime 3x
#   BENCHTIME=1x ./scripts/bench.sh # CI smoke
#   OUT=/tmp/b.json ./scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
OUT="${OUT:-BENCH_parallel.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench: running BenchmarkRecommend + BenchmarkFit (-benchtime $BENCHTIME)…" >&2
go test -run '^$' -bench 'BenchmarkRecommend|BenchmarkFit' -benchtime "$BENCHTIME" . | tee "$raw" >&2

cores="$(go env GOMAXPROCS 2>/dev/null || true)"
if [[ -z "$cores" || "$cores" == "0" ]]; then
    cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
fi

awk -v cores="$cores" -v benchtime="$BENCHTIME" '
/^Benchmark(Recommend|RecommendF32|Fit)\// {
    # BenchmarkRecommend/workers=4-8   12   345 ns/op ...
    name = $1; sub(/-[0-9]+$/, "", name)
    iters[name] = $2
    for (i = 3; i < NF; i++) if ($(i + 1) == "ns/op") nsop[name] = $i
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"gomaxprocs\": %d,\n", cores
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.0f, \"iterations\": %d}%s\n", \
            name, nsop[name], iters[name], (i < n - 1 ? "," : "")
    }
    printf "  },\n"
    rs = nsop["BenchmarkRecommend/workers=1"]
    best_r = ""; best_rv = 0
    fs = nsop["BenchmarkFit/replicas=0"]
    best_f = ""; best_fv = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name ~ /^BenchmarkRecommend\// && name != "BenchmarkRecommend/workers=1" && nsop[name] > 0) {
            v = rs / nsop[name]
            if (v > best_rv) { best_rv = v; best_r = name }
        }
        if (name ~ /^BenchmarkFit\// && name != "BenchmarkFit/replicas=0" && nsop[name] > 0) {
            v = fs / nsop[name]
            if (v > best_fv) { best_fv = v; best_f = name }
        }
    }
    printf "  \"recommend_speedup\": {\"baseline\": \"BenchmarkRecommend/workers=1\", \"best\": \"%s\", \"x\": %.2f},\n", best_r, best_rv
    printf "  \"fit_speedup\": {\"baseline\": \"BenchmarkFit/replicas=0\", \"best\": \"%s\", \"x\": %.2f}\n", best_f, best_fv
    printf "}\n"
}' "$raw" > "$OUT"

echo "bench: wrote $OUT" >&2
cat "$OUT"
