#!/usr/bin/env bash
# Benchmark-regression smoke (CI): re-run the single-core recommendation
# benchmark and fail if ns/op regressed more than MAX_RATIO× against the
# committed BENCH_parallel.json baseline. The comparison is deliberately
# loose (default 2×) because CI machines are noisy and -benchtime small;
# it exists to catch algorithmic regressions (a kernel falling back to
# per-candidate forwards, an arena leak re-introducing per-op allocation),
# not single-digit-percent drift. See BENCHMARKS.md for methodology.
#
# Also gates BenchmarkRetrievalLookup with an *absolute* bound
# (MAX_LOOKUP_NS, default 1ms/op): the retrieval cold-start tier promises
# sub-millisecond lookups on a ~10k-entry store, so an absolute budget is
# the contract rather than a ratio against a committed baseline.
#
# Usage:
#   ./scripts/bench_regression.sh                # default -benchtime 5x, ratio 2.0
#   BENCHTIME=3x MAX_RATIO=3.0 MAX_LOOKUP_NS=2000000 ./scripts/bench_regression.sh
#
# Writes bench_regression.txt (uploaded as a CI artifact) with the
# baseline, the measured values, and the verdicts.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-5x}"
MAX_RATIO="${MAX_RATIO:-2.0}"
BASELINE_FILE="${BASELINE_FILE:-BENCH_parallel.json}"
REPORT="${REPORT:-bench_regression.txt}"
BENCH="BenchmarkRecommend/workers=1"
LOOKUP_BENCH="BenchmarkRetrievalLookup"
MAX_LOOKUP_NS="${MAX_LOOKUP_NS:-1000000}"

baseline="$(awk -v key="\"$BENCH\"" '
    $0 ~ key { if (match($0, /"ns_per_op": *[0-9]+/))
        print substr($0, RSTART + 13, RLENGTH - 13) }
' "$BASELINE_FILE")"
if [[ -z "$baseline" || "$baseline" == "0" ]]; then
    echo "bench-regression: no $BENCH baseline in $BASELINE_FILE" >&2
    exit 2
fi

echo "bench-regression: running $BENCH (-benchtime $BENCHTIME)…" >&2
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkRecommend$/^workers=1$' -benchtime "$BENCHTIME" . | tee "$raw" >&2

measured="$(awk '/^BenchmarkRecommend\/workers=1/ {
    for (i = 3; i < NF; i++) if ($(i + 1) == "ns/op") { printf "%.0f", $i; exit }
}' "$raw")"
if [[ -z "$measured" ]]; then
    echo "bench-regression: benchmark produced no ns/op line" >&2
    exit 2
fi

verdict="$(awk -v m="$measured" -v b="$baseline" -v r="$MAX_RATIO" '
    BEGIN { print (m > b * r) ? "FAIL" : "ok" }')"
ratio="$(awk -v m="$measured" -v b="$baseline" 'BEGIN { printf "%.2f", m / b }')"

echo "bench-regression: running $LOOKUP_BENCH (-benchtime $BENCHTIME)…" >&2
lookup_raw="$(mktemp)"
trap 'rm -f "$raw" "$lookup_raw"' EXIT
go test -run '^$' -bench "^${LOOKUP_BENCH}\$" -benchtime "$BENCHTIME" . | tee "$lookup_raw" >&2

lookup_measured="$(awk '/^BenchmarkRetrievalLookup/ {
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") { printf "%.0f", $i; exit }
}' "$lookup_raw")"
if [[ -z "$lookup_measured" ]]; then
    echo "bench-regression: $LOOKUP_BENCH produced no ns/op line" >&2
    exit 2
fi
lookup_verdict="$(awk -v m="$lookup_measured" -v lim="$MAX_LOOKUP_NS" '
    BEGIN { print (m > lim) ? "FAIL" : "ok" }')"

{
    echo "benchmark:   $BENCH"
    echo "baseline:    $baseline ns/op ($BASELINE_FILE)"
    echo "measured:    $measured ns/op (-benchtime $BENCHTIME)"
    echo "ratio:       ${ratio}x (limit ${MAX_RATIO}x)"
    echo "verdict:     $verdict"
    echo
    echo "benchmark:   $LOOKUP_BENCH"
    echo "measured:    $lookup_measured ns/op (-benchtime $BENCHTIME)"
    echo "budget:      $MAX_LOOKUP_NS ns/op (absolute)"
    echo "verdict:     $lookup_verdict"
} | tee "$REPORT"

if [[ "$verdict" == "FAIL" ]]; then
    echo "bench-regression: $BENCH regressed ${ratio}x vs committed baseline (limit ${MAX_RATIO}x)" >&2
    exit 1
fi
if [[ "$lookup_verdict" == "FAIL" ]]; then
    echo "bench-regression: $LOOKUP_BENCH ${lookup_measured} ns/op exceeds ${MAX_LOOKUP_NS} ns/op budget" >&2
    exit 1
fi
