#!/usr/bin/env bash
# Chaos/recovery smoke test for the serving stack (DESIGN.md §9).
#
# Phase 1 — crash recovery: boot liteserve with the feedback WAL fsyncing
# every append, post feedback, SIGKILL the process mid-retrain, restart it
# on the same state and assert that (a) every acked-but-unfolded feedback
# record is recovered, (b) the snapshot left behind loads (the restart
# resumes the adapted model), and (c) serving works immediately after.
# liteload runs across the restart window and reports how many requests
# failed while the server was down (down column) and the time to first
# success after the restart (ttfs column).
#
# Phase 2 — poisoned update: restart with -chaos-corrupt-every 1 so every
# retrained candidate has NaN weights, post feedback, and assert the
# validation gate rejects the hot-swap: the serving generation does not
# move, the batch lands in the quarantine file, and retrain backoff arms.
#
# A summary is written to chaos_report.txt (CHAOS_REPORT overrides).
set -euo pipefail

cd "$(dirname "$0")/.."

report="${CHAOS_REPORT:-chaos_report.txt}"
workdir="$(mktemp -d)"
pid=""
loadpid=""

cleanup() {
    for p in "$pid" "$loadpid"; do
        if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "chaos-smoke: FAIL: $*" >&2
    [[ -f "$report" ]] && cat "$report" >&2
    exit 1
}

# metric FILE NAME → value (0 when the series does not exist yet).
metric() {
    awk -v n="$2" '$1==n {v=$2; found=1} END {print found ? v : 0}' "$1"
}

# wait_ready LOGFILE PID → echoes the base URL once the server prints it.
wait_ready() {
    local logfile=$1 spid=$2 base=""
    for _ in $(seq 1 240); do
        if ! kill -0 "$spid" 2>/dev/null; then
            echo "chaos-smoke: liteserve exited early:" >&2
            cat "$logfile" >&2
            return 1
        fi
        base="$(sed -n 's|^liteserve: listening on \(http://[^ ]*\).*|\1|p' "$logfile" | head -n1)"
        [[ -n "$base" ]] && { echo "$base"; return 0; }
        sleep 0.5
    done
    echo "chaos-smoke: server never became ready:" >&2
    cat "$logfile" >&2
    return 1
}

scrape() { curl -s "$1/metrics" -o "$2" || fail "scraping $1/metrics"; }

echo "chaos-smoke: building liteserve and liteload…"
go build -o "$workdir/liteserve" ./cmd/liteserve
go build -o "$workdir/liteload" ./cmd/liteload

: >"$report"
echo "chaos smoke report — $(date -u +%Y-%m-%dT%H:%M:%SZ)" >>"$report"

############################################################################
echo "chaos-smoke: phase 1 — crash recovery"
wal1="$workdir/wal1"
snap1="$workdir/model1.json"
log1="$workdir/phase1-a.log"
# Validation off in this phase so feedback accounting is exactly
# records − folded; phase 2 exercises the gate.
serve_flags=(-configs 2 -train-sizes 1 -update-batch 4
    -wal-dir "$wal1" -wal-sync-every 1 -snapshot "$snap1" -no-validation)
"$workdir/liteserve" -addr 127.0.0.1:0 "${serve_flags[@]}" >"$log1" 2>&1 &
pid=$!
base="$(wait_ready "$log1" "$pid")" || fail "phase 1 boot"
addr="${base#http://}"
echo "chaos-smoke: phase 1 server at $base"

# 7 feedbacks against batch size 4: the first 4 may fold into generation 1,
# the last 3 can never fold before the kill — so with every append fsynced,
# recovery must replay between 3 and 7 records.
posted=7
for _ in $(seq 1 "$posted"); do
    code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d '{"app":"WordCount","size_mb":512,"cluster":"C"}' "$base/feedback")"
    [[ "$code" == "200" ]] || fail "phase 1 POST /feedback returned $code"
done

scrape "$base" "$workdir/prekill.metrics"
records_prekill="$(metric "$workdir/prekill.metrics" lite_wal_records_total)"
folded_prekill="$(metric "$workdir/prekill.metrics" lite_feedback_folded_total)"
[[ "$records_prekill" == "$posted" ]] || fail "WAL acked $records_prekill records, posted $posted"

# SIGKILL while the first batch's retrain is (likely) in flight, with
# liteload running through the outage so the report shows the restart
# window from the client's side.
"$workdir/liteload" -url "$base" -n 2000 -c 2 -timeout 2s >"$workdir/liteload.out" 2>/dev/null &
loadpid=$!
sleep 0.3
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "chaos-smoke: SIGKILLed liteserve (records=$records_prekill folded=$folded_prekill)"

log2="$workdir/phase1-b.log"
"$workdir/liteserve" -addr "$addr" "${serve_flags[@]}" >"$log2" 2>&1 &
pid=$!
base2="$(wait_ready "$log2" "$pid")" || fail "phase 1 restart"
[[ "$base2" == "$base" ]] || fail "restart bound $base2, expected $base"

grep -q "resumed adapted model from snapshot" "$log2" \
    || fail "restart did not load the snapshot the crash left behind"
recovered="$(sed -n 's/^liteserve: WAL recovery: \([0-9]*\) records replayed.*/\1/p' "$log2" | head -n1)"
[[ -n "$recovered" ]] || fail "restart printed no WAL recovery line"
lo=$((posted - folded_prekill - 8)); [[ $lo -lt 3 ]] && lo=3
[[ "$recovered" -ge "$lo" && "$recovered" -le "$posted" ]] \
    || fail "recovered $recovered records, want between $lo and $posted (fsynced feedback must survive SIGKILL)"

code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"app":"WordCount","size_mb":512,"cluster":"C"}' "$base/recommend")"
[[ "$code" == "200" ]] || fail "POST /recommend after restart returned $code"

wait "$loadpid" || true
loadpid=""
down="$(awk '/^remote /{print $6}' "$workdir/liteload.out")"

{
    echo ""
    echo "phase 1 (SIGKILL mid-retrain, restart on same WAL + snapshot):"
    echo "  feedback posted:            $posted"
    echo "  folded before kill:         $folded_prekill"
    echo "  WAL records recovered:      $recovered (bound: $lo..$posted)"
    echo "  snapshot resume:            ok (loadable after SIGKILL)"
    echo "  requests failed while down: ${down:--}"
    echo ""
    echo "  liteload report across the restart window:"
    sed 's/^/    /' "$workdir/liteload.out"
} >>"$report"

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

############################################################################
echo "chaos-smoke: phase 2 — poisoned update is rejected and quarantined"
wal2="$workdir/wal2"
snap2="$workdir/model2.json"
log3="$workdir/phase2.log"
cp "$snap1" "$snap2" # resume the adapted model: no boot training
"$workdir/liteserve" -addr 127.0.0.1:0 -update-batch 2 \
    -wal-dir "$wal2" -wal-sync-every 1 -snapshot "$snap2" \
    -validation-cases 2 -chaos-corrupt-every 1 >"$log3" 2>&1 &
pid=$!
base="$(wait_ready "$log3" "$pid")" || fail "phase 2 boot"
echo "chaos-smoke: phase 2 server at $base"

scrape "$base" "$workdir/pre.metrics"
gen_before="$(metric "$workdir/pre.metrics" lite_snapshot_generation)"

for _ in 1 2; do
    code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d '{"app":"KMeans","size_mb":512,"cluster":"B"}' "$base/feedback")"
    [[ "$code" == "200" ]] || fail "phase 2 POST /feedback returned $code"
done

rejected=0
for _ in $(seq 1 240); do
    scrape "$base" "$workdir/post.metrics"
    rejected="$(metric "$workdir/post.metrics" lite_hotswap_rejected_total)"
    [[ "$rejected" -ge 1 ]] && break
    sleep 0.5
done
[[ "$rejected" -ge 1 ]] || fail "validation gate never rejected the poisoned candidate"

gen_after="$(metric "$workdir/post.metrics" lite_snapshot_generation)"
backoff="$(metric "$workdir/post.metrics" lite_retrain_backoff_seconds)"
quarantined="$(metric "$workdir/post.metrics" lite_feedback_quarantined_total)"
[[ "$gen_after" == "$gen_before" ]] \
    || fail "generation moved $gen_before -> $gen_after despite rejected swap"
[[ -s "$wal2/quarantine.jsonl" ]] || fail "rejected batch missing from quarantine file"
awk "BEGIN{exit !($backoff > 0)}" || fail "retrain backoff gauge is $backoff, want > 0"

code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"app":"KMeans","size_mb":512,"cluster":"B"}' "$base/recommend")"
[[ "$code" == "200" ]] || fail "serving broken after rejected swap ($code)"

{
    echo ""
    echo "phase 2 (every retrain candidate NaN-poisoned via -chaos-corrupt-every 1):"
    echo "  hot-swaps rejected:   $rejected"
    echo "  serving generation:   $gen_before (unchanged)"
    echo "  feedback quarantined: $quarantined ($(wc -l <"$wal2/quarantine.jsonl") quarantine entries)"
    echo "  retrain backoff:      ${backoff}s"
    echo ""
    echo "chaos-smoke: OK"
} >>"$report"

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

cat "$report"
echo "chaos-smoke: OK (report: $report)"
