#!/usr/bin/env bash
# Smoke test for liteserve: boot on a random port with a minimal
# boot-trained model, issue one /recommend and one /feedback request, and
# assert both return HTTP 200.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
logfile="$workdir/liteserve.log"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building liteserve…"
go build -o "$workdir/liteserve" ./cmd/liteserve

echo "serve-smoke: starting on a random port (quick boot-training)…"
"$workdir/liteserve" -addr 127.0.0.1:0 -configs 2 -train-sizes 1 >"$logfile" 2>&1 &
pid=$!

# The server prints "liteserve: listening on http://ADDR (…)" once ready.
base=""
for _ in $(seq 1 120); do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: liteserve exited early:" >&2
        cat "$logfile" >&2
        exit 1
    fi
    base="$(sed -n 's|^liteserve: listening on \(http://[^ ]*\).*|\1|p' "$logfile" | head -n1)"
    [[ -n "$base" ]] && break
    sleep 0.5
done
if [[ -z "$base" ]]; then
    echo "serve-smoke: server never became ready:" >&2
    cat "$logfile" >&2
    exit 1
fi
echo "serve-smoke: server ready at $base"

code="$(curl -s -o "$workdir/recommend.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"app":"WordCount","size_mb":512,"cluster":"C"}' \
    "$base/recommend")"
if [[ "$code" != "200" ]]; then
    echo "serve-smoke: POST /recommend returned $code" >&2
    cat "$workdir/recommend.json" >&2
    exit 1
fi
echo "serve-smoke: /recommend 200 ($(head -c 120 "$workdir/recommend.json")…)"

code="$(curl -s -o "$workdir/feedback.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"app":"WordCount","size_mb":512,"cluster":"C"}' \
    "$base/feedback")"
if [[ "$code" != "200" ]]; then
    echo "serve-smoke: POST /feedback returned $code" >&2
    cat "$workdir/feedback.json" >&2
    exit 1
fi
echo "serve-smoke: /feedback 200 ($(cat "$workdir/feedback.json"))"

echo "serve-smoke: OK"
