#!/usr/bin/env bash
# Smoke test for liteserve: boot on a random port with a minimal
# boot-trained model, issue one /recommend and one /feedback request
# through the legacy deprecation shims (asserting both still answer 200
# with the Deprecation header), then run a full /v1 tuning-session
# lifecycle and one error-envelope check.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
logfile="$workdir/liteserve.log"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building liteserve…"
go build -o "$workdir/liteserve" ./cmd/liteserve

echo "serve-smoke: starting on a random port (quick boot-training, float32 serving)…"
# -f32 exercises the packed float32 inference plan end to end (DESIGN.md
# §12): every response below is served by the f32 tower kernel.
"$workdir/liteserve" -addr 127.0.0.1:0 -configs 2 -train-sizes 1 -f32 >"$logfile" 2>&1 &
pid=$!

# The server prints "liteserve: listening on http://ADDR (…)" once ready.
base=""
for _ in $(seq 1 120); do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: liteserve exited early:" >&2
        cat "$logfile" >&2
        exit 1
    fi
    base="$(sed -n 's|^liteserve: listening on \(http://[^ ]*\).*|\1|p' "$logfile" | head -n1)"
    [[ -n "$base" ]] && break
    sleep 0.5
done
if [[ -z "$base" ]]; then
    echo "serve-smoke: server never became ready:" >&2
    cat "$logfile" >&2
    exit 1
fi
echo "serve-smoke: server ready at $base"

code="$(curl -s -D "$workdir/recommend.hdr" -o "$workdir/recommend.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"app":"WordCount","size_mb":512,"cluster":"C"}' \
    "$base/recommend")"
if [[ "$code" != "200" ]]; then
    echo "serve-smoke: POST /recommend returned $code" >&2
    cat "$workdir/recommend.json" >&2
    exit 1
fi
if ! grep -qi '^Deprecation: true' "$workdir/recommend.hdr"; then
    echo "serve-smoke: legacy /recommend answered without a Deprecation header" >&2
    exit 1
fi
echo "serve-smoke: /recommend 200 + Deprecation header ($(head -c 120 "$workdir/recommend.json")…)"

code="$(curl -s -o "$workdir/feedback.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"app":"WordCount","size_mb":512,"cluster":"C"}' \
    "$base/feedback")"
if [[ "$code" != "200" ]]; then
    echo "serve-smoke: POST /feedback returned $code" >&2
    cat "$workdir/feedback.json" >&2
    exit 1
fi
echo "serve-smoke: /feedback 200 ($(cat "$workdir/feedback.json"))"

# Full /v1 tuning-session lifecycle: create → baseline proposal → report →
# second proposal (now carrying the abort_after_seconds guard-rail) →
# report an improvement → close.
code="$(curl -s -o "$workdir/sess.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"app":"WordCount","size_mb":512,"cluster":"C","strategy":"moderate","max_trials":4}' \
    "$base/v1/tuning/sessions")"
if [[ "$code" != "201" ]]; then
    echo "serve-smoke: POST /v1/tuning/sessions returned $code" >&2
    cat "$workdir/sess.json" >&2
    exit 1
fi
sess_id="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/sess.json")"
if [[ -z "$sess_id" ]]; then
    echo "serve-smoke: session create returned no id: $(cat "$workdir/sess.json")" >&2
    exit 1
fi
echo "serve-smoke: session created ($sess_id)"

for trial in 0 1; do
    code="$(curl -s -o "$workdir/prop.json" -w '%{http_code}' \
        -X POST "$base/v1/tuning/sessions/$sess_id/proposal")"
    if [[ "$code" != "200" ]]; then
        echo "serve-smoke: proposal returned $code: $(cat "$workdir/prop.json")" >&2
        exit 1
    fi
    if [[ "$trial" == "1" ]] && ! grep -q '"abort_after_seconds"' "$workdir/prop.json"; then
        echo "serve-smoke: post-baseline proposal missing the abort_after_seconds guard-rail: $(cat "$workdir/prop.json")" >&2
        exit 1
    fi
    code="$(curl -s -o "$workdir/result.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d "{\"trial\":$trial,\"seconds\":$((100 - trial))}" \
        "$base/v1/tuning/sessions/$sess_id/result")"
    if [[ "$code" != "200" ]]; then
        echo "serve-smoke: result returned $code: $(cat "$workdir/result.json")" >&2
        exit 1
    fi
done
if ! grep -q '"promoted":true' "$workdir/result.json"; then
    echo "serve-smoke: improving trial was not promoted: $(cat "$workdir/result.json")" >&2
    exit 1
fi
code="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$base/v1/tuning/sessions/$sess_id")"
if [[ "$code" != "200" ]]; then
    echo "serve-smoke: DELETE session returned $code" >&2
    exit 1
fi
echo "serve-smoke: session lifecycle OK (proposal → report → promotion → close)"

# A never-seen app with embeddable features must be served by the
# retrieval cold-start tier (DESIGN.md §13), not rejected with a 400: the
# boot-trained dataset seeds the retrieval store, and these WordCount-like
# tokens should land on a WordCount-family neighbour.
code="$(curl -s -o "$workdir/cold.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d '{"app":"BrandNewLogCounter","size_mb":2048,"cluster":"C","features":{"code":"val lines = sc.textFile(inputPath)\nval words = lines.flatMap(line => line.split(\" \")).map(word => (word, 1L))\nval counts = words.reduceByKey(_ + _)\ncounts.saveAsTextFile(outputPath)","ops":["textFile","flatMap","map","reduceByKey"]}}' \
    "$base/v1/recommend")"
if [[ "$code" != "200" ]]; then
    echo "serve-smoke: never-seen-app /v1/recommend returned $code: $(cat "$workdir/cold.json")" >&2
    exit 1
fi
if ! grep -q '"tier":"retrieval"' "$workdir/cold.json"; then
    echo "serve-smoke: never-seen app was not served from the retrieval tier: $(cat "$workdir/cold.json")" >&2
    exit 1
fi
echo "serve-smoke: never-seen app served 200 from retrieval tier ($(head -c 120 "$workdir/cold.json")…)"

# Every /v1 failure answers with the unified error envelope.
code="$(curl -s -o "$workdir/err.json" -w '%{http_code}' \
    "$base/v1/tuning/sessions/no.1.C.00000000")"
if [[ "$code" != "404" ]] || ! grep -q '"error"' "$workdir/err.json" \
    || ! grep -q '"not_found"' "$workdir/err.json"; then
    echo "serve-smoke: unknown-id error was not the envelope ($code): $(cat "$workdir/err.json")" >&2
    exit 1
fi
echo "serve-smoke: error envelope OK ($(cat "$workdir/err.json" | head -c 120))"

echo "serve-smoke: OK"
