#!/usr/bin/env bash
# Fleet smoke test for the sharded serving tier (DESIGN.md §10).
#
# Boots a 3-shard litefleet, drives feedback until the trainer publishes a
# retrained generation and the coordinator flips it fleet-wide, runs one
# tuning-session lifecycle on a follower-owned key (create → proposals →
# improving reports → close) and asserts the promotions are teed to the
# trainer and flip a new generation fleet-wide with zero legacy-route hits,
# then SIGKILLs one follower shard while liteload hammers the router and
# asserts:
#
#   (a) re-route: the dead shard's arc moves to ring successors — the load
#       run sees zero hard errors and the router counts ejections/re-routes,
#   (b) recovery: the supervisor respawns the shard on a fresh ephemeral
#       port and the health checker re-admits it (3/3 up again),
#   (c) convergence: after recovery every shard reports the same model
#       generation (the coordinator re-flips the restarted shard, which
#       came back at generation 0).
#
# A summary is written to fleet_report.txt (FLEET_REPORT overrides).
set -euo pipefail

cd "$(dirname "$0")/.."

report="${FLEET_REPORT:-fleet_report.txt}"
workdir="$(mktemp -d)"
pid=""
loadpid=""

cleanup() {
    for p in "$loadpid" "$pid"; do
        if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "fleet-smoke: FAIL: $*" >&2
    [[ -n "$pid" ]] && tail -n 40 "$workdir/fleet.log" >&2
    [[ -f "$report" ]] && cat "$report" >&2
    exit 1
}

# metric FILE NAME → value (0 when the series does not exist yet).
metric() {
    awk -v n="$2" '$1==n {v=$2; found=1} END {print found ? v : 0}' "$1"
}

scrape() { curl -s "$1/metrics" -o "$2" || fail "scraping $1/metrics"; }

# healthz FIELD → python-free JSON field extraction via the fleet healthz
# body; generations prints every shard's generation, one per line. Uses the
# /v1 route: the legacy-counter assertion below counts every shim hit, and
# health polling happens inside its window.
fleet_health() { curl -s "$base/v1/healthz"; }
up_count()     { fleet_health | sed -n 's/.*"up":\([0-9]*\),"shards".*/\1/p'; }
generations()  { fleet_health | grep -o '"generation":[0-9]*' | cut -d: -f2; }

echo "fleet-smoke: building litefleet, liteserve and liteload…"
go build -o "$workdir/litefleet" ./cmd/litefleet
go build -o "$workdir/liteserve" ./cmd/liteserve
go build -o "$workdir/liteload" ./cmd/liteload

: >"$report"
echo "fleet smoke report — $(date -u +%Y-%m-%dT%H:%M:%SZ)" >>"$report"

############################################################################
echo "fleet-smoke: booting a 3-shard fleet"
fleetdir="$workdir/fleet"
log="$workdir/fleet.log"
"$workdir/litefleet" -addr 127.0.0.1:0 -shards 3 -dir "$fleetdir" \
    -configs 2 -train-sizes 1 -update-batch 4 -no-validation \
    -probe-interval 100ms -fail-after 2 -recover-after 2 >"$log" 2>&1 &
pid=$!

base=""
for _ in $(seq 1 240); do
    kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; fail "litefleet exited during boot"; }
    addr="$(sed -n 's/^litefleet: listening addr=\(.*\)$/\1/p' "$log" | head -n1)"
    [[ -n "$addr" ]] && { base="http://$addr"; break; }
    sleep 0.5
done
[[ -n "$base" ]] || fail "router never printed its listening addr"
echo "fleet-smoke: router at $base"

for _ in $(seq 1 240); do
    [[ "$(up_count)" == "3" ]] && break
    sleep 0.5
done
[[ "$(up_count)" == "3" ]] || fail "fleet never reached 3/3 shards up"
echo "fleet-smoke: 3/3 shards up"

############################################################################
echo "fleet-smoke: driving feedback until a retrained generation flips fleet-wide"
# update-batch is 4; feedback hashed to followers is teed to the trainer, so
# 8 posts across two keys guarantee at least one trainer retrain.
for i in $(seq 1 8); do
    app='{"app":"WordCount","size_mb":512,"cluster":"C"}'
    [[ $((i % 2)) == 0 ]] && app='{"app":"KMeans","size_mb":1024,"cluster":"B"}'
    code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "$app" "$base/feedback")"
    [[ "$code" == "200" ]] || fail "POST /feedback returned $code"
done

flipped_gen=""
for _ in $(seq 1 240); do
    gens="$(generations | sort -u)"
    if [[ "$(echo "$gens" | wc -l)" == "1" && "$gens" != "0" && "$(up_count)" == "3" ]]; then
        flipped_gen="$gens"
        break
    fi
    sleep 0.5
done
[[ -n "$flipped_gen" ]] || fail "fleet never converged on a retrained generation (generations: $(generations | tr '\n' ' '))"
echo "fleet-smoke: fleet converged on generation $flipped_gen"

############################################################################
echo "fleet-smoke: tuning session on a follower-owned key"
# Everything from here on is /v1 tooling: the router's legacy-shim counter
# must not move again until the (legacy, deliberately) final recovery curl.
scrape "$base" "$workdir/sess-pre.metrics"
legacy_before="$(awk '/^lite_http_legacy_requests_total/ {s+=$2} END {print s+0}' "$workdir/sess-pre.metrics")"

sess_id=""
sess_owner=""
for combo in '{"app":"WordCount","size_mb":512,"cluster":"C","strategy":"moderate","max_trials":10}' \
             '{"app":"KMeans","size_mb":1024,"cluster":"B","strategy":"moderate","max_trials":10}' \
             '{"app":"PageRank","size_mb":2048,"cluster":"A","strategy":"moderate","max_trials":10}' \
             '{"app":"TeraSort","size_mb":4096,"cluster":"C","strategy":"moderate","max_trials":10}'; do
    curl -s -D "$workdir/sess.hdr" -o "$workdir/sess.json" -X POST -H 'Content-Type: application/json' \
        -d "$combo" "$base/v1/tuning/sessions" || fail "creating session"
    owner="$(awk -F': ' 'tolower($1)=="x-lite-shard" {print $2}' "$workdir/sess.hdr" | tr -d '\r' | head -n1)"
    id="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/sess.json")"
    if [[ -n "$id" && -n "$owner" && "$owner" != "shard0" ]]; then
        sess_id="$id"
        sess_owner="$owner"
        break
    fi
    [[ -n "$id" ]] && curl -s -o /dev/null -X DELETE "$base/v1/tuning/sessions/$id"
done
[[ -n "$sess_id" ]] || fail "no session key hashed to a follower shard"
echo "fleet-smoke: session $sess_id owned by follower $sess_owner"

# Drive the lifecycle: trial 0 measures the baseline, every later trial
# "measures" a strict improvement, so each one promotes through the
# feedback path. Reports stay far below the abort_after_seconds guard-rail.
promotions=0
for _ in $(seq 0 7); do
    curl -s -o "$workdir/prop.json" -X POST "$base/v1/tuning/sessions/$sess_id/proposal" \
        || fail "requesting proposal"
    trial="$(sed -n 's/.*"trial":\([0-9]*\).*/\1/p' "$workdir/prop.json" | head -n1)"
    [[ -n "$trial" ]] || fail "proposal carried no trial: $(cat "$workdir/prop.json")"
    curl -s -o "$workdir/result.json" -X POST -H 'Content-Type: application/json' \
        -d "{\"trial\":$trial,\"seconds\":$((100 - trial))}" \
        "$base/v1/tuning/sessions/$sess_id/result" || fail "reporting result"
    grep -q "\"session_id\":\"$sess_id\"" "$workdir/result.json" \
        || fail "result not acknowledged: $(cat "$workdir/result.json")"
    grep -q '"promoted":true' "$workdir/result.json" && promotions=$((promotions + 1))
done
[[ "$promotions" -ge 4 ]] || fail "session promoted $promotions wins, want >= 4 (one per improving trial)"

curl -s -o /dev/null -X DELETE "$base/v1/tuning/sessions/$sess_id" || fail "closing session"
curl -s "$base/v1/tuning/sessions" | grep -q "$sess_id" \
    || fail "closed session missing from the fleet-wide list"

# The promotions happened on a follower; the router tees each one to the
# trainer, whose update loop retrains and the coordinator flips the new
# generation fleet-wide — the promotion is visible everywhere.
scrape "$base" "$workdir/sess-post.metrics"
teed="$(metric "$workdir/sess-post.metrics" lite_fleet_session_promotions_teed_total)"
[[ "$teed" -ge "$promotions" ]] || fail "only $teed of $promotions promotions teed to the trainer"

session_gen=""
for _ in $(seq 1 240); do
    gens="$(generations | sort -u)"
    if [[ "$(echo "$gens" | wc -l)" == "1" && "$gens" -gt "$flipped_gen" ]]; then
        session_gen="$gens"
        break
    fi
    sleep 0.5
done
[[ -n "$session_gen" ]] || fail "promotions never produced a fleet-wide flip past generation $flipped_gen (generations: $(generations | tr '\n' ' '))"
echo "fleet-smoke: session promotions flipped the fleet to generation $session_gen"
flipped_gen="$session_gen"

############################################################################
echo "fleet-smoke: SIGKILLing a follower under load"
victim_pid="$(sed -n 's/.*shard id=shard1 pid=\([0-9]*\).*/\1/p' "$log" | head -n1)"
[[ -n "$victim_pid" ]] || fail "could not find shard1's pid in the supervisor log"

scrape "$base" "$workdir/pre.metrics"
restarts_before="$(metric "$workdir/pre.metrics" 'lite_fleet_shard_restarts_total{shard="shard1"}')"
ring_moves_before="$(metric "$workdir/pre.metrics" lite_fleet_ring_moves_total)"

"$workdir/liteload" -url "$base" -n 1200 -c 8 -keys 8 -timeout 5s >"$workdir/liteload.out" 2>/dev/null &
loadpid=$!
sleep 0.5
kill -9 "$victim_pid"
echo "fleet-smoke: killed shard1 (pid $victim_pid) mid-load"

wait "$loadpid" || true
loadpid=""

errors="$(awk '/^remote /{print $3}' "$workdir/liteload.out")"
down="$(awk '/^remote /{print $6}' "$workdir/liteload.out")"
[[ "$errors" == "0" ]] || fail "liteload saw $errors hard errors across the shard kill (want 0: arc must re-route)"
[[ "${down:-0}" == "0" ]] || fail "liteload saw $down connection failures — the router itself must stay up"

scrape "$base" "$workdir/post.metrics"
ejections="$(metric "$workdir/post.metrics" lite_fleet_ejections_total)"
rerouted="$(metric "$workdir/post.metrics" lite_fleet_rerouted_total)"
[[ "$ejections" -ge 1 ]] || fail "dead shard was never ejected (ejections=$ejections)"

# The session curls and the liteload run above are all /v1 tooling: the
# legacy deprecation shims must not have been touched since the baseline.
legacy_after="$(awk '/^lite_http_legacy_requests_total/ {s+=$2} END {print s+0}' "$workdir/post.metrics")"
[[ "$legacy_after" == "$legacy_before" ]] \
    || fail "new tooling hit legacy routes: lite_http_legacy_requests_total $legacy_before -> $legacy_after"

############################################################################
echo "fleet-smoke: waiting for supervisor restart + re-admission + re-flip"
recovered=""
for _ in $(seq 1 240); do
    gens="$(generations | sort -u)"
    if [[ "$(up_count)" == "3" && "$(echo "$gens" | wc -l)" == "1" && "$gens" != "0" ]]; then
        recovered="$gens"
        break
    fi
    sleep 0.5
done
[[ -n "$recovered" ]] || fail "fleet never recovered to 3/3 up on one generation (up=$(up_count), generations: $(generations | tr '\n' ' '))"
[[ "$recovered" -ge "$flipped_gen" ]] || fail "fleet generation went backwards: $flipped_gen -> $recovered"

scrape "$base" "$workdir/final.metrics"
restarts_after="$(metric "$workdir/final.metrics" 'lite_fleet_shard_restarts_total{shard="shard1"}')"
ring_moves_after="$(metric "$workdir/final.metrics" lite_fleet_ring_moves_total)"
[[ "$restarts_after" -gt "$restarts_before" ]] || fail "supervisor never restarted shard1"
# The kill ejects shard1 (one ring move) and the supervisor's respawn
# re-admits it (a second): the ring must have moved at least twice.
[[ "$ring_moves_after" -ge $((ring_moves_before + 2)) ]] \
    || fail "ring moves $ring_moves_before -> $ring_moves_after, want >= +2 (eject + re-admit)"

code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"app":"PageRank","size_mb":2048,"cluster":"A"}' "$base/recommend")"
[[ "$code" == "200" ]] || fail "POST /recommend after recovery returned $code"

{
    echo ""
    echo "tuning session on follower $sess_owner ($sess_id):"
    echo "  promotions from improving trials: $promotions"
    echo "  promotions teed to the trainer:   $teed"
    echo "  fleet flipped to generation:      $flipped_gen (promotion visible fleet-wide)"
    echo "  legacy-route hits by /v1 tooling: $((legacy_after - legacy_before)) (want 0)"
    echo ""
    echo "3-shard fleet, shard1 SIGKILLed under load (1200 reqs, 8 workers):"
    echo "  hard errors during the kill:  ${errors:-?} (want 0 — arc re-routed to successors)"
    echo "  router connection failures:   ${down:-0}"
    echo "  shard ejections:              $ejections"
    echo "  requests re-routed:           $rerouted"
    echo "  shard1 supervisor restarts:   $((restarts_after - restarts_before))"
    echo "  ring moves (eject+re-admit):  $((ring_moves_after - ring_moves_before))"
    echo "  generation before kill:       $flipped_gen"
    echo "  generation after recovery:    $recovered (single fleet-wide value)"
    echo ""
    echo "  liteload report across the kill window:"
    sed 's/^/    /' "$workdir/liteload.out"
    echo ""
    echo "fleet-smoke: OK"
} >>"$report"

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

cat "$report"
echo "fleet-smoke: OK (report: $report)"
