GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything must compile and every test pass.
verify:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 45m

clean:
	$(GO) clean ./...
	rm -f lite-tuner.json
