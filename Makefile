GO ?= go

.PHONY: build test vet race lint verify serve-smoke chaos-smoke fleet-smoke bench bench-parallel bench-regression clean

build:
	$(GO) build ./...

# Tests run shuffled so accidental inter-test ordering dependencies
# (shared state, leftover goroutines) surface in CI instead of in prod.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./...

# lint enforces the exported-comment rule (internal/tools/exportlint, a
# dependency-free revive/ST1020 equivalent): every exported symbol in the
# library packages must carry a godoc comment starting with its name.
lint:
	$(GO) run ./internal/tools/exportlint $(wildcard internal/*) pkg/api pkg/client

# verify is the tier-1 gate plus the serving-stack race check: everything
# must compile, every test pass, every exported symbol be documented, and
# the concurrent read/hot-swap paths be clean under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./internal/tools/exportlint $(wildcard internal/*) pkg/api pkg/client
	$(GO) test -shuffle=on ./...
	$(GO) test -race -shuffle=on ./internal/serve/... ./internal/core/... ./internal/fleet/... ./internal/retrieval/...

# serve-smoke boots liteserve on a random port, issues one /recommend and
# one /feedback request, and asserts both return 200.
serve-smoke:
	./scripts/serve_smoke.sh

# chaos-smoke SIGKILLs liteserve mid-retrain and asserts recovery: no
# fsynced feedback lost, snapshot loadable, poisoned updates rejected and
# quarantined. Writes chaos_report.txt (see DESIGN.md §9).
chaos-smoke:
	./scripts/chaos_smoke.sh

# fleet-smoke boots a 3-shard litefleet, SIGKILLs one shard under load and
# asserts re-route (zero client errors), supervisor restart + ring
# re-admission, and fleet-wide generation convergence after the hot-swap.
# Writes fleet_report.txt (see DESIGN.md §10).
fleet-smoke:
	./scripts/fleet_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 45m

# bench-parallel runs only the scoring/training parallelism benchmarks and
# writes BENCH_parallel.json (see DESIGN.md §7 and README "Performance").
bench-parallel:
	./scripts/bench.sh

# bench-regression re-runs the single-core recommendation benchmark and
# fails if it regressed >2x against the committed BENCH_parallel.json
# baseline (see BENCHMARKS.md). Writes bench_regression.txt.
bench-regression:
	./scripts/bench_regression.sh

clean:
	$(GO) clean ./...
	rm -f lite-tuner.json chaos_report.txt fleet_report.txt bench_regression.txt
