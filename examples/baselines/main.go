// Baselines shoot-out on one application: LITE vs Bayesian optimization vs
// DDPG vs expert rules on a large Terasort job — a miniature of Table VI
// with the tuning-overhead story of Figure 8.
package main

import (
	"fmt"
	"math/rand"

	"lite/internal/experiments"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.ConfigsPerInstance = 6
	suite := experiments.NewSuite(opts)

	app := workload.ByName("Terasort")
	data := app.Spec.MakeData(app.Sizes.Test)
	env := sparksim.ClusterC
	budget := 7200.0

	fmt.Printf("tuning %s on %.0f MB, cluster C, budget %.0f s of trial executions\n\n",
		app.Spec.Name, data.SizeMB, budget)

	def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig()).Seconds
	fmt.Printf("%-8s %10.1f s   (no tuning)\n", "Default", def)

	methods := []experiments.TunerMethod{
		experiments.ManualTuner{},
		experiments.NewBOTuner(suite),
		experiments.NewDDPGTuner(suite, false),
	}
	for i, m := range methods {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		res := m.Tune(app, data, env, budget, rng)
		fmt.Printf("%-8s %10.1f s   (%d trials, %.0f s of trial time)\n",
			m.Name(), res.BestSeconds, res.Trials,
			res.Trace[len(res.Trace)-1].OverheadSeconds)
	}

	tuner := suite.Tuner() // trains LITE on the shared offline dataset
	rec := tuner.Recommend(app.Spec, data, env)
	actual := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
	fmt.Printf("%-8s %10.1f s   (0 trials, %v decision time)\n", "LITE", actual, rec.Overhead)
	fmt.Printf("\nLITE speedup over default: %.1fx\n", def/actual)
}
