// Quickstart: train LITE offline on small-data runs, then get a knob
// recommendation for a large PageRank job — the end-to-end flow of
// Figure 2 of the paper in ~40 lines.
package main

import (
	"fmt"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

func main() {
	// Offline phase: collect small-data training runs for a handful of
	// applications and train the NECS estimator + ACG models.
	apps := []*workload.App{
		workload.ByName("PageRank"),
		workload.ByName("KMeans"),
		workload.ByName("Terasort"),
		workload.ByName("WordCount"),
	}
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 8
	fmt.Println("training LITE on small-data runs of", len(apps), "applications…")
	tuner, ds := core.Train(apps, opts)
	fmt.Printf("collected %d application runs (%d stage-level instances)\n\n",
		len(ds.Runs), len(ds.Instances))

	// Online phase: recommend knobs for PageRank on a 4 GB graph in the
	// production cluster (cluster C: 8 nodes × 16 cores, 16 GB, 1 Gbps).
	app := workload.ByName("PageRank")
	data := app.Spec.MakeData(app.Sizes.Test)
	env := sparksim.ClusterC
	rec := tuner.Recommend(app.Spec, data, env)

	fmt.Printf("recommendation computed in %v (paper budget: < 2 s)\n", rec.Overhead)
	fmt.Println("recommended configuration:")
	fmt.Println(" ", rec.Config)

	// Verify against the testbed.
	def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig())
	got := sparksim.Simulate(app.Spec, data, env, rec.Config)
	fmt.Printf("\ndefault configuration: %8.1f s\n", def.Seconds)
	fmt.Printf("LITE recommendation:   %8.1f s  (%.1fx speedup)\n",
		got.Seconds, def.Seconds/got.Seconds)
}
