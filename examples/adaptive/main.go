// Adaptive Model Update: fine-tune NECS on production feedback via
// adversarial learning (paper §IV-B). The source domain is the small-data
// training set; the target domain is large-data runs on cluster C. The
// example shows (1) the domain gap in prediction error, (2) the update
// closing it, and (3) the domains becoming harder to distinguish.
package main

import (
	"fmt"
	"math/rand"

	"lite/internal/core"
	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

func main() {
	apps := []*workload.App{
		workload.ByName("LinearRegression"),
		workload.ByName("SVM"),
		workload.ByName("KMeans"),
		workload.ByName("WordCount"),
	}
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 8
	fmt.Println("offline training on small-data runs…")
	tuner, ds := core.Train(apps, opts)
	model := tuner.Model
	source := core.EncodeAll(model.Encoder, ds.Instances)

	// Collect target-domain feedback: recommended-and-executed large jobs.
	rng := rand.New(rand.NewSource(7))
	var targetRaw []instrument.StageInstance
	env := sparksim.ClusterC
	for _, app := range apps {
		data := app.Spec.MakeData(app.Sizes.Test)
		for i := 0; i < 4; i++ {
			cfg := core.ForceFeasible(sparksim.RandomConfig(rng), env)
			run := instrument.Run(app.Spec, data, env, cfg)
			targetRaw = append(targetRaw, run.Stages...)
		}
	}
	target := core.EncodeAll(model.Encoder, targetRaw)
	fmt.Printf("collected %d target-domain (large-data) stage instances\n\n", len(target))

	mse := func(m *core.NECS) float64 {
		var s float64
		for _, x := range target {
			d := m.Predict(x) - x.Y
			s += d * d
		}
		return s / float64(len(target))
	}
	amuCfg := core.DefaultAMUConfig()
	accBefore := core.DomainAccuracy(model, sample(source, 120, rng), target, amuCfg, rng)
	fmt.Printf("before update: target-domain MSE (log space) = %.3f, domain-classifier accuracy = %.2f\n",
		mse(model), accBefore)

	core.AdaptiveModelUpdate(model, sample(source, 200, rng), target, amuCfg, rng)

	accAfter := core.DomainAccuracy(model, sample(source, 120, rng), target, amuCfg, rng)
	fmt.Printf("after update:  target-domain MSE (log space) = %.3f, domain-classifier accuracy = %.2f\n",
		mse(model), accAfter)
	fmt.Println("\nThe prediction-loss drop on the target domain is the effect that matters")
	fmt.Println("(paper Table IX). The domain classifier often stays accurate because the")
	fmt.Println("datasize itself is a model input — the gradient-reversal pressure pushes")
	fmt.Println("the *hidden* representations together only as far as the prediction loss")
	fmt.Println("allows (accuracy → 0.5 would be the full adversarial equilibrium).")
}

func sample(data []*core.Encoded, n int, rng *rand.Rand) []*core.Encoded {
	if n >= len(data) {
		return data
	}
	out := make([]*core.Encoded, n)
	for i, j := range rng.Perm(len(data))[:n] {
		out[i] = data[j]
	}
	return out
}
