// Cold-start tuning: recommend knobs for an application LITE has never
// seen (paper §V-G). The tuner is trained with every TriangleCount
// instance removed; online, LITE instruments the new application once on
// the smallest dataset to recover stage-level codes and DAGs, then
// recommends — no 2-hour search loop.
package main

import (
	"fmt"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

func main() {
	const newcomer = "TriangleCount"

	// Train on every application EXCEPT the newcomer.
	var apps []*workload.App
	for _, a := range workload.All() {
		if a.Spec.Name != newcomer {
			apps = append(apps, a)
		}
	}
	opts := core.DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 6
	fmt.Printf("training LITE on %d applications (never seen: %s)…\n", len(apps), newcomer)
	tuner, _ := core.Train(apps, opts)

	// Cold-start Step 1: one cheap instrumented run on the smallest data.
	app := workload.ByName(newcomer)
	env := sparksim.ClusterC
	run, overhead := core.ColdStartInstrument(app, env)
	fmt.Printf("instrumented %s once on %d MB: %d stage-level instances, %.1f s overhead\n",
		newcomer, int(app.Sizes.Train[0]), len(run.Stages), overhead)

	// Steps 2–3: recommend for the large production job. The code and DAG
	// encoders generalize from other applications' stages: operations like
	// groupByKey and zipPartitions were seen elsewhere, and unseen tokens
	// fall back to the oov embedding.
	data := app.Spec.MakeData(app.Sizes.Test)
	rec := tuner.Recommend(app.Spec, data, env)
	def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig())
	got := sparksim.Simulate(app.Spec, data, env, rec.Config)

	fmt.Printf("\nnever-seen %s on %.0f MB, cluster C:\n", newcomer, data.SizeMB)
	fmt.Printf("  default: %8.1f s\n", def.Seconds)
	fmt.Printf("  LITE:    %8.1f s  (cold-start, %.1fx speedup, %v decision time)\n",
		got.Seconds, def.Seconds/got.Seconds, rec.Overhead)
}
