// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs one experiment end-to-end on the simulator
// testbed and reports custom metrics (mean ETR, HR@5, NDCG@5, …) so the
// shapes can be compared against the paper. Run with:
//
//	go test -bench=. -benchmem
//
// The experiments share one lazily-built suite (training dataset + trained
// LITE tuner), so the first benchmark to need it pays the training cost.
package lite

import (
	"sync"
	"testing"

	"lite/internal/experiments"
)

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

// suite returns the shared benchmark suite, sized for a single-core runner:
// slightly fewer sampled configurations and epochs than the litebench
// defaults, same structure.
func suite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		opts := experiments.DefaultOptions()
		opts.ConfigsPerInstance = 6
		opts.NECS.Epochs = 8
		benchSuite = experiments.NewSuite(opts)
	})
	return benchSuite
}

// BenchmarkFigure1 regenerates the motivation sweeps: execution time vs
// executor.cores and the cores×memory grid for PageRank and TriangleCount.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1(suite())
		b.ReportMetric(float64(r.BestCores["PageRank"]), "PR-best-cores")
		b.ReportMetric(float64(r.BestCores["TriangleCount"]), "TC-best-cores")
	}
}

// BenchmarkFigure9 regenerates the stage-based code organization
// statistics: instance amplification and token growth.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9(suite())
		var amp float64
		for _, app := range r.Apps {
			amp += r.Amplification[app]
		}
		b.ReportMetric(amp/float64(len(r.Apps)), "mean-amplification-x")
	}
}

// BenchmarkTable6 regenerates the end-to-end tuning comparison (and the
// Figure 7 ETR matrix): Default/Manual/MLP/BO/DDPG/DDPG-C/LITE on all 15
// applications, large data, cluster C.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table6(suite())
		b.ReportMetric(r.MeanETR("LITE"), "LITE-ETR")
		b.ReportMetric(r.MeanETR("BO"), "BO-ETR")
		b.ReportMetric(r.MeanETR("DDPG"), "DDPG-ETR")
		b.ReportMetric(r.MeanSeconds("LITE"), "LITE-mean-s")
		b.ReportMetric(r.LITEOverheadSeconds, "LITE-overhead-s")
	}
}

// BenchmarkFigure8 regenerates the tuning-overhead case study
// (DecisionTree, LinearRegression): BO/DDPG best-so-far curves vs LITE's
// single sub-second recommendation.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(suite())
		b.ReportMetric(r.LITEPoints["DecisionTree"].BestSeconds, "DT-LITE-s")
		b.ReportMetric(r.LITEPoints["LinearRegression"].BestSeconds, "LR-LITE-s")
	}
}

// BenchmarkTable7 regenerates the ranking ablation: {LightGBM,MLP} ×
// {W,S,WC,SC,SCG} plus GCN/LSTM/Transformer/NECS, on clusters A/B/C and
// large jobs.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table7(suite())
		b.ReportMetric(r.Scores["NECS"]["C"].HR, "NECS-C-HR@5")
		b.ReportMetric(r.Scores["NECS"]["C"].NDCG, "NECS-C-NDCG@5")
		b.ReportMetric(r.Scores["NECS"]["Large"].NDCG, "NECS-Large-NDCG@5")
		b.ReportMetric(r.Scores["LightGBM+SCG"]["C"].NDCG, "GBM-SCG-C-NDCG@5")
	}
}

// BenchmarkTable8 regenerates both halves of Table VIII: RFR point
// prediction vs LITE, and Random/LHS/ACG candidate sampling under the same
// NECS ranker.
func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.Table8a(suite())
		c := experiments.Table8b(suite())
		b.ReportMetric(a.LITEETR, "LITE-ETR")
		b.ReportMetric(a.RFRETR, "RFR-ETR")
		b.ReportMetric(c.MeanTopSeconds["ACG"], "ACG-top1-s")
		b.ReportMetric(c.MeanTopSeconds["Random"], "Random-top1-s")
	}
}

// BenchmarkTable9 regenerates the Adaptive Model Update evaluation: static
// NECS vs NECS_u per cluster with Wilcoxon significance.
func BenchmarkTable9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table9(suite())
		b.ReportMetric(r.Updated["C"].NDCG-r.Static["C"].NDCG, "C-NDCG-gain")
		b.ReportMetric(r.PValueNDCG["C"], "C-p-value")
	}
}

// BenchmarkTable10 regenerates the cold-start sweep: leave-one-app-out
// retraining and ETR of the recommendation for the never-seen application.
func BenchmarkTable10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table10(suite())
		b.ReportMetric(r.MeanETR, "mean-cold-ETR")
	}
}

// BenchmarkTable11 regenerates the warm/cold ranking comparison including
// the Cold-UNK (no oov token) ablation.
func BenchmarkTable11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table11(suite())
		b.ReportMetric(r.Scores["NECS"]["warm"].NDCG, "NECS-warm-NDCG@5")
		b.ReportMetric(r.Scores["NECS"]["cold"].NDCG, "NECS-cold-NDCG@5")
		b.ReportMetric(r.Scores["NECS"]["cold-UNK"].NDCG, "NECS-coldUNK-NDCG@5")
	}
}

// BenchmarkFigure10 regenerates the never-seen-fraction sweep (reduced
// grid for the single-core runner; litebench runs the full sweep).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(suite(), []int{3, 8}, 1)
		b.ReportMetric(r.HR[0], "HR@5-at-20%")
		b.ReportMetric(r.HR[len(r.HR)-1], "HR@5-at-53%")
	}
}

// BenchmarkTable12 regenerates the cross-environment study: NECS_AB /
// NECS_C / NECS_all evaluated on cluster C.
func BenchmarkTable12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table12(suite())
		b.ReportMetric(r.Scores["NECS_all"].NDCG, "all-NDCG@5")
		b.ReportMetric(r.Scores["NECS_AB"].NDCG, "AB-NDCG@5")
	}
}

// BenchmarkColdStartOverhead regenerates the §V-I instrumentation-overhead
// analysis for cold-start applications.
func BenchmarkColdStartOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ColdStartOverhead(suite())
		var oh, saved float64
		for _, app := range r.Apps {
			oh += r.InstrumentSeconds[app]
			saved += r.SavedSeconds[app]
		}
		n := float64(len(r.Apps))
		b.ReportMetric(oh/n, "mean-overhead-s")
		b.ReportMetric(saved/n, "mean-saved-s")
	}
}

// BenchmarkExtraBaselines runs the beyond-paper comparison against the
// related-work approaches the paper surveys in §VI (Ernest, AutoTune, DAC).
func BenchmarkExtraBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Extra(suite())
		b.ReportMetric(r.MeanETR("LITE"), "LITE-ETR")
		b.ReportMetric(r.MeanETR("Ernest"), "Ernest-ETR")
		b.ReportMetric(r.MeanETR("AutoTune"), "AutoTune-ETR")
		b.ReportMetric(r.MeanETR("DAC"), "DAC-ETR")
	}
}

// BenchmarkAblation runs the design-choice ablations DESIGN.md calls out:
// CNN kernel sets, tower vs flat head, and the ACG σ scale.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ablation(suite())
		b.ReportMetric(r.KernelScores["k=[2,3,4]"].NDCG, "multi-kernel-NDCG@5")
		b.ReportMetric(r.KernelScores["k=[3]"].NDCG, "single-kernel-NDCG@5")
		b.ReportMetric(r.SigmaSeconds[1], "sigma1.0-top1-s")
	}
}
